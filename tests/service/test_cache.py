"""Unit tests for the LRU + TTL result cache and the canonical keys."""

import pytest

from repro.geometry import Rect
from repro.service import (
    MISS,
    JoinRequest,
    KNNRequest,
    ResultCache,
    WindowRequest,
    canonical_rect,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCanonicalRect:
    def test_orders_corners(self):
        assert canonical_rect((3.0, 4.0, 1.0, 2.0)) == (1.0, 2.0, 3.0, 4.0)

    def test_accepts_rect_objects(self):
        assert canonical_rect(Rect(1, 2, 3, 4)) == (1.0, 2.0, 3.0, 4.0)

    def test_rounds_float_noise(self):
        a = canonical_rect((0.1 + 0.2, 0.0, 1.0, 1.0))
        b = canonical_rect((0.3, 0.0, 1.0, 1.0))
        assert a == b

    def test_negative_zero_normalised(self):
        assert canonical_rect((-0.0, -0.0, 1.0, 1.0)) == (0.0, 0.0, 1.0, 1.0)

    def test_request_keys_distinguish_classes(self):
        window = WindowRequest("t", Rect(0, 0, 1, 1)).cache_key()
        knn = KNNRequest("t", 0, 0, 1).cache_key()
        join = JoinRequest("t", "t").cache_key()
        assert len({window, knn, join}) == 3

    def test_window_key_ignores_noise(self):
        a = WindowRequest("t", Rect(0.1 + 0.2, 0, 1, 1)).cache_key()
        b = WindowRequest("t", Rect(0.3, 0, 1, 1)).cache_key()
        assert a == b


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", (1, 2))
        assert cache.get("a") == (1, 2)
        assert cache.hits == 1 and cache.misses == 1 and cache.inserts == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_ttl_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)  # past the original expiry (hits don't refresh TTL)
        assert cache.get("a") is MISS
        assert cache.expirations == 1
        assert cache.misses == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0 and cache.inserts == 0

    def test_counters_reconcile(self):
        cache = ResultCache(capacity=3)
        for i in range(10):
            key = i % 5
            if cache.get(key) is MISS:
                cache.put(key, key)
        assert cache.lookups == cache.hits + cache.misses == 10
        assert cache.inserts <= cache.misses
        assert cache.evictions <= cache.inserts
        assert len(cache) <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 99)  # refresh moves a to MRU; no eviction yet
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 99


class TestStaleness:
    """Staleness semantics: an expired entry is a miss on the normal
    path, but the serve-stale degraded path can still read it — counted
    and flagged separately from a hit."""

    def make(self, keep_stale=True):
        clock = FakeClock()
        cache = ResultCache(
            capacity=4, ttl_s=10.0, keep_stale=keep_stale, clock=clock
        )
        cache.put("a", (1, 2))
        clock.advance(11.0)  # expire it
        return cache, clock

    def test_expired_entry_is_a_miss_but_kept(self):
        cache, _ = self.make(keep_stale=True)
        assert cache.get("a") is MISS
        assert cache.expirations == 1
        assert len(cache) == 1  # retained for degraded reads

    def test_expired_entry_deleted_without_keep_stale(self):
        cache, _ = self.make(keep_stale=False)
        assert cache.get("a") is MISS
        assert len(cache) == 0
        assert cache.get_stale("a") is MISS

    def test_get_stale_returns_expired_value(self):
        cache, _ = self.make(keep_stale=True)
        assert cache.get("a") is MISS  # normal path refuses
        assert cache.get_stale("a") == (1, 2)  # degraded path serves
        assert cache.stale_hits == 1
        assert cache.hits == 0  # a stale serve is never a plain hit

    def test_get_stale_does_not_refresh_lru(self):
        clock = FakeClock()
        cache = ResultCache(
            capacity=2, ttl_s=10.0, keep_stale=True, clock=clock
        )
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(11.0)
        cache.get_stale("a")  # must NOT move "a" to MRU
        cache.put("c", 3)  # evicts the LRU tail, still "a"
        assert cache.get_stale("a") is MISS
        assert cache.get_stale("b") == 2

    def test_get_stale_also_serves_fresh_entries(self):
        clock = FakeClock()
        cache = ResultCache(
            capacity=4, ttl_s=10.0, keep_stale=True, clock=clock
        )
        cache.put("a", 1)
        assert cache.get_stale("a") == 1
        assert cache.stale_hits == 1

    def test_stale_hits_traced_distinctly(self):
        from repro.trace import EventKind, ListSink, Tracer

        clock = FakeClock()
        sink = ListSink()
        tracer = Tracer(clock=clock, sinks=[sink])
        cache = ResultCache(
            capacity=4, ttl_s=10.0, keep_stale=True, clock=clock,
            tracer=tracer,
        )
        cache.put("a", 1)
        clock.advance(11.0)
        cache.get("a")
        cache.get_stale("a")
        kinds = [e.kind for e in sink.events]
        assert kinds == [
            EventKind.SVC_CACHE_INSERT,
            EventKind.SVC_CACHE_EXPIRE,
            EventKind.SVC_CACHE_MISS,
            EventKind.SVC_CACHE_STALE_HIT,
        ]

    def test_stats_include_stale_hits(self):
        cache, _ = self.make(keep_stale=True)
        cache.get_stale("a")
        assert cache.stats()["stale_hits"] == 1


class TestStaleRetentionBound:
    """``keep_stale`` must not let long-dead entries squat on capacity:
    past the ``stale_ttl_s`` retention bound (default 4 × ttl) an
    expired entry is dropped on any touch and purged from the LRU front
    on insert, counted as a ``stale_eviction``."""

    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("capacity", 4)
        kwargs.setdefault("ttl_s", 10.0)
        cache = ResultCache(keep_stale=True, clock=clock, **kwargs)
        return cache, clock

    def test_default_bound_is_four_ttls(self):
        cache, _ = self.make()
        assert cache.stale_ttl_s == pytest.approx(40.0)
        no_ttl = ResultCache(capacity=4, keep_stale=True)
        assert no_ttl.stale_ttl_s is None

    def test_get_stale_refuses_entries_past_the_bound(self):
        cache, clock = self.make(stale_ttl_s=5.0)
        cache.put("a", 1)
        clock.advance(14.0)  # expired 4s ago: within the bound
        assert cache.get_stale("a") == 1
        clock.advance(2.0)  # expired 6s ago: beyond it
        assert cache.get_stale("a") is MISS
        assert cache.stale_evictions == 1
        assert len(cache) == 0

    def test_get_drops_dead_entries(self):
        cache, clock = self.make(stale_ttl_s=5.0)
        cache.put("a", 1)
        clock.advance(16.0)
        assert cache.get("a") is MISS
        assert cache.expirations == 1
        assert cache.stale_evictions == 1
        assert len(cache) == 0

    def test_put_purges_dead_entries_from_the_lru_front(self):
        cache, clock = self.make(stale_ttl_s=5.0, capacity=8)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        clock.advance(16.0)  # all three long dead
        cache.put("d", 4)
        assert cache.stale_evictions == 3
        assert len(cache) == 1

    def test_dead_entries_do_not_force_out_fresh_ones(self):
        """The churn scenario the bound exists for: dead-stale entries
        must never make a *live* entry pay the eviction."""
        cache, clock = self.make(stale_ttl_s=5.0, capacity=4)
        for key in ("a", "b", "c", "d"):
            cache.put(key, key)
        clock.advance(16.0)  # all dead
        for key in ("e", "f", "g", "h"):
            cache.put(key, key)
        assert cache.evictions == 0
        assert cache.stale_evictions == 4
        assert all(cache.get(k) == k for k in ("e", "f", "g", "h"))

    def test_counted_stale_lru_victim_is_not_double_counted(self):
        """An entry already counted as an expiration must not also count
        as an eviction when LRU removes it — that would break the
        checker's ``evictions + expirations <= inserts`` ledger."""
        cache, clock = self.make(capacity=2)  # default bound: stays stale
        cache.put("a", 1)
        clock.advance(11.0)
        assert cache.get("a") is MISS  # counts the expiration
        cache.put("b", 2)
        cache.put("c", 3)  # capacity claims "a"
        assert cache.expirations == 1
        assert cache.evictions == 0
        assert cache.stale_evictions == 1
        assert cache.stats()["stale_evictions"] == 1

    def test_invalid_stale_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(ttl_s=10.0, keep_stale=True, stale_ttl_s=-1.0)
