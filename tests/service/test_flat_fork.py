"""Fork-safety of the flat backend: fork-inherits-*arrays*.

A forked :class:`~repro.service.workers.WorkerPool` parks the tree
registry in a module global before forking; with flat trees the workers
inherit the packed numpy arrays by copy-on-write.  The answers computed
inside a forked worker must be byte-identical (same pickled payloads) to
the ones computed in-process over the very same trees — and the new
flat modules must pass the project's FORK001 lint rule, which forbids
unregistered writes to fork-inherited module globals.
"""

import asyncio
import pickle

import pytest

from repro.analysis.lint import run_lint
from repro.datagen import paper_maps
from repro.rtree import build_flat_tree
from repro.service import WorkerPool, fork_available

from tests.flat_oracle import query_windows

SCALE = 0.004


@pytest.fixture(scope="module")
def flat_trees():
    map1, map2 = paper_maps(scale=SCALE)
    return {"map1": build_flat_tree(map1), "map2": build_flat_tree(map2)}


def run_pool(trees, processes, coro_fn):
    async def main():
        pool = WorkerPool(trees, processes)
        pool.start()
        try:
            return await coro_fn(pool)
        finally:
            await pool.close()

    return asyncio.run(main())


async def answer_everything(pool):
    side = 1e9
    rects = [
        (w.xl, w.yl, w.xu, w.yu) for w in query_windows(17, side=side / 2e7)
    ]
    windows = await pool.run("windows", "map1", rects)
    knn = await pool.run("knn", "map2", 3.0, 4.0, 25)
    join = await pool.run("join", "map1", "map2", None)
    return windows, knn, join


class TestForkedFlatParity:
    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_forked_answers_are_byte_identical_to_inline(self, flat_trees):
        inline = run_pool(flat_trees, 0, answer_everything)
        forked = run_pool(flat_trees, 2, answer_everything)
        assert pickle.dumps(inline) == pickle.dumps(forked)
        windows, knn, join = forked
        assert any(windows), "degenerate workload: no window hits"
        assert len(knn) == 25
        assert join, "degenerate workload: empty join"

    def test_thread_pool_answers_flat_queries(self, flat_trees):
        windows, knn, join = run_pool(flat_trees, 0, answer_everything)
        assert len(windows) == len(query_windows(17))
        assert all(d >= 0 for d, _ in knn)
        assert all(len(pair) == 2 for pair in join)


class TestForkLint:
    def test_fork001_passes_on_the_flat_modules(self):
        findings, stats = run_lint(
            [
                "src/repro/rtree/flat.py",
                "src/repro/join/flat.py",
                "src/repro/zorder/curve.py",
            ],
            select=["FORK001"],
        )
        assert stats["files"] == 3
        assert findings == []
