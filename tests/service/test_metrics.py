"""Latency reservoir / percentile math and the metrics trace sink."""

import math

from repro.service import LatencyReservoir, ServiceMetrics, percentile
from repro.trace import EventKind, TraceEvent


def event(seq, kind, **data):
    return TraceEvent(seq=seq, time=float(seq), kind=kind, proc=-1, data=data)


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_sample(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0
        assert abs(percentile(samples, 99) - 99.01) < 0.02

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0


class TestLatencyReservoir:
    def test_tracks_mean_and_max(self):
        reservoir = LatencyReservoir()
        for value in (1.0, 2.0, 3.0):
            reservoir.add(value)
        assert reservoir.count == 3
        assert reservoir.mean == 2.0
        assert reservoir.max == 3.0

    def test_capacity_bounds_memory(self):
        reservoir = LatencyReservoir(capacity=100)
        for value in range(10_000):
            reservoir.add(float(value))
        assert reservoir.count == 10_000
        assert len(reservoir._samples) == 100
        quantiles = reservoir.quantiles()
        # Reservoir sampling keeps the distribution roughly uniform.
        assert 2_000 < quantiles["p50_s"] < 8_000


class TestServiceMetricsSink:
    def test_aggregates_request_stream(self):
        metrics = ServiceMetrics()
        stream = [
            event(0, EventKind.SVC_ENGINE_START),
            event(1, EventKind.SVC_REQUEST_SUBMITTED, cls="window"),
            event(2, EventKind.SVC_REQUEST_ADMITTED, cls="window", inflight=1),
            event(3, EventKind.SVC_REQUEST_COMPLETED, cls="window",
                  latency_s=0.010, cached=0, batch=4),
            event(4, EventKind.SVC_REQUEST_SUBMITTED, cls="window"),
            event(5, EventKind.SVC_REQUEST_REJECTED, cls="window", reason="capacity"),
            event(6, EventKind.SVC_REQUEST_SUBMITTED, cls="knn"),
            event(7, EventKind.SVC_REQUEST_ADMITTED, cls="knn", inflight=3),
            event(8, EventKind.SVC_REQUEST_TIMEOUT, cls="knn"),
            event(9, EventKind.SVC_BATCH_EXECUTED, cls="window", size=4),
            event(10, EventKind.SVC_ENGINE_STOP),
        ]
        for item in stream:
            metrics.handle(item)
        report = metrics.report()
        window = report["per_class"]["window"]
        assert window["submitted"] == 2
        assert window["completed"] == 1
        assert window["rejected"] == 1
        assert window["p50_s"] == 0.010
        assert report["per_class"]["knn"]["timeouts"] == 1
        assert report["latency"]["count"] == 1
        assert metrics.queue_depth_max == 3
        assert report["batch_sizes"]["batches"] == 1
        assert report["batch_sizes"]["requests_batched"] == 4
        assert metrics.throughput(10.0) == 0.1
        # start/stop span: 10 time units, 1 completion
        assert abs(metrics.throughput() - 0.1) < 1e-12
