"""Chunked (resumable) joins through the serving engine: the chunk
decomposition is invisible to clients, and a crashing worker pool only
re-runs the chunks it lost."""

import asyncio

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.geometry import Rect
from repro.service import Engine, EngineConfig, JoinRequest, Status


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=0.02)
    trees = {"r": build_tree(m1), "s": build_tree(m2)}
    side = m1.region.side
    return trees, side


def submit_one(trees, config, request, timeout=60):
    async def main():
        async with Engine(trees, config) as engine:
            return await engine.submit(request, timeout=timeout)

    return asyncio.run(main())


class TestChunkedEqualsUnchunked:
    def test_same_answer_as_single_call_join(self, workload):
        trees, _ = workload
        request = JoinRequest(tree_r="r", tree_s="s")
        plain = submit_one(trees, EngineConfig(workers=2, batching=False), request)
        chunked = submit_one(
            trees,
            EngineConfig(workers=2, batching=False, join_chunks=4),
            request,
        )
        assert plain.status is Status.OK and chunked.status is Status.OK
        assert chunked.value == plain.value
        assert len(plain.value) > 0

    def test_windowed_join_chunks_agree(self, workload):
        trees, side = workload
        window = Rect(0, 0, side * 0.5, side * 0.5)
        request = JoinRequest(tree_r="r", tree_s="s", window=window)
        plain = submit_one(trees, EngineConfig(workers=0, batching=False), request)
        chunked = submit_one(
            trees,
            EngineConfig(workers=2, batching=False, join_chunks=3),
            request,
        )
        assert chunked.status is Status.OK
        assert chunked.value == plain.value

    def test_more_chunks_than_tasks_still_exact(self, workload):
        trees, _ = workload
        request = JoinRequest(tree_r="r", tree_s="s")
        plain = submit_one(trees, EngineConfig(workers=0, batching=False), request)
        chunked = submit_one(
            trees,
            EngineConfig(workers=2, batching=False, join_chunks=64),
            request,
        )
        assert chunked.status is Status.OK
        assert chunked.value == plain.value


class TestCrashingPool:
    def test_crashy_workers_only_rerun_lost_chunks(self, workload):
        trees, _ = workload
        request = JoinRequest(tree_r="r", tree_s="s")
        healthy = submit_one(
            trees, EngineConfig(workers=2, batching=False), request
        )
        crashy = submit_one(
            trees,
            EngineConfig(
                workers=2,
                batching=False,
                join_chunks=4,
                faults=FaultPlan(seed=4, worker_crash_p=0.2),
                cache_capacity=0,
            ),
            request,
        )
        assert crashy.status is Status.OK
        assert crashy.value == healthy.value
