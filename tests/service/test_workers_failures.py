"""Failure semantics of the worker pool: every call terminates in a
typed outcome — a value or a :class:`WorkerError` — never a silently
pending future (the satellite regression of ``_fail``)."""

import asyncio
import os
import pickle
import signal
import time

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultInjector, FaultPlan
from repro.service import WorkerError, WorkerPool, fork_available
from repro.trace import EventKind, ListSink, Tracer


@pytest.fixture(scope="module")
def trees():
    map1, _ = paper_maps(scale=0.01)
    return {"map1": build_tree(map1)}


def run_pool(trees, processes, coro_fn, **pool_kwargs):
    async def main():
        pool = WorkerPool(trees, processes, **pool_kwargs)
        pool.start()
        try:
            return await coro_fn(pool)
        finally:
            await pool.close()

    return asyncio.run(main())


class TestWorkerErrorType:
    def test_pickle_round_trip(self):
        error = WorkerError(
            "boom", cause_type="KeyError", call_id=7, kind="knn"
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, WorkerError)
        assert clone.cause_type == "KeyError"
        assert clone.call_id == 7
        assert clone.kind == "knn"
        assert "boom" in str(clone)

    def test_unknown_execution_kind_rejected(self, trees):
        async def body(pool):
            with pytest.raises(KeyError):
                await pool.run("divination", "map1")

        run_pool(trees, 0, body)


class TestThreadModeFailures:
    def test_unknown_tree_is_typed_worker_error(self, trees):
        async def body(pool):
            with pytest.raises(WorkerError) as info:
                await pool.run("knn", "nope", 0.0, 0.0, 3)
            return info.value

        error = run_pool(trees, 0, body)
        assert error.cause_type == "KeyError"
        assert error.kind == "knn"
        assert error.call_id >= 0

    def test_failure_emits_sup_call_failed(self, trees):
        sink = ListSink()
        tracer = Tracer(clock=time.monotonic, sinks=[sink])

        async def body(pool):
            with pytest.raises(WorkerError):
                await pool.run("windows", "nope", [(0, 0, 1, 1)])

        run_pool(trees, 0, body, tracer=tracer)
        failed = [
            e for e in sink.events if e.kind is EventKind.SUP_CALL_FAILED
        ]
        assert len(failed) == 1
        assert failed[0].data["op"] == "windows"
        assert failed[0].data["error"] == "KeyError"


@pytest.mark.slow
@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestForkModeFailures:
    def test_unknown_tree_is_typed_worker_error(self, trees):
        async def body(pool):
            assert pool.forked
            with pytest.raises(WorkerError) as info:
                await pool.run("knn", "nope", 0.0, 0.0, 3)
            return info.value

        error = run_pool(trees, 2, body)
        assert error.cause_type == "KeyError"

    def test_killed_worker_resolves_future_with_deadline_error(self, trees):
        """SIGKILL one worker while its call is in flight: the awaited
        future must still resolve — as a typed deadline WorkerError —
        instead of hanging forever (the original ``_fail`` bug).  A hang
        directive pins the call inside the worker so the kill is
        guaranteed to land mid-call."""
        plan = FaultPlan(seed=1, worker_hang_p=1.0, hang_s=30.0)
        injector = FaultInjector(plan)

        async def body(pool):
            victim = next(iter(pool.worker_pids()))

            async def assassin():
                await asyncio.sleep(0.1)
                os.kill(victim, signal.SIGKILL)

            kill_task = asyncio.ensure_future(assassin())
            with pytest.raises(WorkerError) as info:
                await pool.run("knn", "map1", 0.5, 0.5, 3, timeout_s=1.0)
            await kill_task
            return info.value

        error = run_pool(trees, 1, body, injector=injector)
        assert error.cause_type == "deadline"
        assert error.kind == "knn"

    def test_injected_crash_resolves_future(self, trees):
        """A worker dying via os._exit (the injected crash) leaves its
        apply_async entry orphaned; the deadline brace must still fail
        the call in bounded time."""
        plan = FaultPlan(seed=2, worker_crash_p=1.0)
        injector = FaultInjector(plan)

        async def body(pool):
            started = time.monotonic()
            with pytest.raises(WorkerError) as info:
                await pool.run("knn", "map1", 0.5, 0.5, 3, timeout_s=0.5)
            return info.value, time.monotonic() - started

        error, elapsed = run_pool(trees, 2, body, injector=injector)
        assert error.cause_type == "deadline"
        assert elapsed < 10
        assert injector.crashes == 1

    def test_crashed_worker_without_timeout_uses_pool_default(self, trees):
        """Regression: with ``timeout_s=None`` a hard-crashed fork never
        fires its apply_async callback and the deadline sweep skips
        deadline-less entries — the call pended forever (and a draining
        engine deadlocked behind it).  Fork-mode calls now fall back to
        the pool-level default deadline."""
        plan = FaultPlan(seed=3, worker_crash_p=1.0)
        injector = FaultInjector(plan)

        async def body(pool):
            started = time.monotonic()
            with pytest.raises(WorkerError) as info:
                await pool.run("knn", "map1", 0.5, 0.5, 3)  # no timeout
            return info.value, time.monotonic() - started

        error, elapsed = run_pool(
            trees, 2, body, injector=injector, default_timeout_s=0.5
        )
        assert error.cause_type == "deadline"
        assert elapsed < 10

    def test_two_live_pools_keep_their_own_registries(self, trees):
        """Regression: the tree registry used to be a single module
        global, so a second pool's start() clobbered the first's — a
        replacement worker auto-forked by pool A after a crash inherited
        pool B's trees and failed every call it served."""
        _, map2 = paper_maps(scale=0.01)
        trees_b = {"map2": build_tree(map2)}
        # Crash pool A's worker mid-call (os._exit, like a segfault —
        # an idle SIGKILL would die holding the pool's queue lock and
        # wedge the whole pool, which is not the scenario under test).
        plan = FaultPlan(seed=4, worker_crash_p=1.0)

        async def main():
            pool_a = WorkerPool(trees, 1, injector=FaultInjector(plan))
            pool_b = WorkerPool(trees_b, 1)
            pool_a.start()
            pool_b.start()  # parks its registry next to pool A's
            try:
                victims = pool_a.worker_pids()
                with pytest.raises(WorkerError):
                    await pool_a.run(
                        "knn", "map1", 0.5, 0.5, 3, timeout_s=0.5
                    )
                pool_a.injector = None  # healthy from here on
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    pids = pool_a.worker_pids()
                    if pids and pids.isdisjoint(victims):
                        break
                    await asyncio.sleep(0.05)
                a = await pool_a.run(
                    "knn", "map1", 0.5, 0.5, 3, timeout_s=5.0
                )
                b = await pool_b.run(
                    "knn", "map2", 0.5, 0.5, 3, timeout_s=5.0
                )
                return a, b
            finally:
                await pool_a.close()
                await pool_b.close()

        a, b = asyncio.run(main())
        assert len(a) == 3
        assert len(b) == 3

    def test_restart_fails_inflight_and_recovers(self, trees):
        async def body(pool):
            pids_before = pool.worker_pids()
            assert pids_before

            call = asyncio.ensure_future(
                pool.run("knn", "map1", 0.5, 0.5, 8, timeout_s=5.0)
            )
            await asyncio.sleep(0)  # let the dispatch happen
            pool.restart()
            outcome = await asyncio.gather(call, return_exceptions=True)

            # The fresh pool re-inherited the trees and serves again.
            value = await pool.run("knn", "map1", 0.5, 0.5, 3, timeout_s=5.0)
            return pids_before, pool.worker_pids(), outcome[0], value

        before, after, outcome, value = run_pool(trees, 2, body)
        assert after and after.isdisjoint(before)
        # The in-flight call either finished before the restart landed or
        # was failed by it — but it resolved either way.
        assert isinstance(outcome, (tuple, WorkerError))
        if isinstance(outcome, WorkerError):
            assert outcome.cause_type == "pool-restarted"
        assert len(value) == 3

    def test_expire_overdue_fails_stuck_calls(self, trees):
        """The supervisor's belt to run()'s braces: a registered call
        whose deadline has passed gets its future failed by the sweep."""
        from repro.service.workers import _InflightCall

        async def body(pool):
            loop = asyncio.get_running_loop()
            stuck = loop.create_future()
            pool._inflight[999] = _InflightCall(
                999, "knn", stuck, time.monotonic() - 1.0, True
            )
            expired = pool.expire_overdue()
            error = stuck.exception()
            del pool._inflight[999]
            return expired, error

        expired, error = run_pool(trees, 1, body)
        assert expired == 1
        assert isinstance(error, WorkerError)
        assert error.cause_type == "deadline"
        assert error.call_id == 999
