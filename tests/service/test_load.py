"""Load-generator runs: smoke, arrival models, JSON emission and the
micro-batching throughput comparison (slow)."""

import asyncio
import json
import random

import pytest

from repro.service import EngineConfig
from repro.service.loadgen import RequestFactory, build_trees, main, run_load


@pytest.fixture(scope="module")
def small_world():
    return build_trees(0.005, seed=3)


class TestRunLoad:
    def test_closed_loop_smoke(self, small_world):
        trees, region = small_world
        summary = asyncio.run(
            run_load(
                trees,
                region,
                duration_s=0.5,
                mode="closed",
                clients=8,
                rate=0.0,
                seed=1,
                config=EngineConfig(workers=0, default_timeout_s=10.0),
            )
        )
        assert summary["submitted"] > 0
        assert summary["statuses"].get("ok", 0) > 0
        report = summary["report"]
        assert report["completed"] == summary["statuses"].get("ok", 0)
        assert report["latency"]["p50_s"] > 0
        assert report["throughput_rps"] > 0

    def test_open_loop_smoke(self, small_world):
        trees, region = small_world
        summary = asyncio.run(
            run_load(
                trees,
                region,
                duration_s=0.5,
                mode="open",
                clients=0,
                rate=100.0,
                seed=2,
                config=EngineConfig(workers=0, default_timeout_s=10.0),
            )
        )
        assert summary["submitted"] > 10
        total = sum(summary["statuses"].values())
        assert total == summary["submitted"]

    def test_unknown_mode_rejected(self, small_world):
        trees, region = small_world
        with pytest.raises(ValueError):
            asyncio.run(
                run_load(
                    trees, region, duration_s=0.1, mode="sideways",
                    clients=1, rate=1.0, seed=0,
                )
            )


class TestRequestFactory:
    def test_mix_is_seeded_and_in_bounds(self, small_world):
        _, region = small_world
        factory = RequestFactory(region, seed=11, knn_share=0.3, join_share=0.1)
        rng_a, rng_b = random.Random(5), random.Random(5)
        made_a = [factory.make(rng_a) for _ in range(50)]
        made_b = [factory.make(rng_b) for _ in range(50)]
        assert [type(r).__name__ for r in made_a] == [
            type(r).__name__ for r in made_b
        ]
        classes = {type(r).__name__ for r in made_a}
        assert "WindowRequest" in classes
        for request in made_a:
            if type(request).__name__ == "WindowRequest":
                assert 0 <= request.window.xl <= request.window.xu <= region.side


@pytest.mark.slow
class TestLoadAcceptance:
    def test_cli_emits_bench_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(tmp_path))
        exit_code = main(
            [
                "--duration", "1.0",
                "--scale", "0.005",
                "--clients", "16",
                "--workers", "0",
                "--seed", "3",
            ]
        )
        assert exit_code == 0
        payload = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert payload["bench"] == "service"
        assert payload["latency_p50_s"] > 0
        assert payload["latency_p99_s"] >= payload["latency_p50_s"]
        assert payload["throughput_rps"] > 0
        assert payload["config"]["clients"] == 16
        assert payload["run"]["statuses"]["ok"] > 0

    def test_batching_beats_batch_size_one(self, small_world):
        """Same closed-loop workload, cache off: micro-batching must yield
        a measurable throughput gain over batch-size-1."""
        trees, region = small_world
        factory = RequestFactory(
            region, seed=13, knn_share=0.0, hot_fraction=0.0,
            min_side=0.15, max_side=0.4,
        )

        def run(batching):
            return asyncio.run(
                run_load(
                    trees,
                    region,
                    duration_s=2.0,
                    mode="closed",
                    clients=48,
                    rate=0.0,
                    seed=13,
                    factory=factory,
                    config=EngineConfig(
                        workers=0,
                        batching=batching,
                        batch_window_s=0.005,
                        max_batch=32,
                        cache_capacity=0,
                        default_timeout_s=30.0,
                        max_inflight=256,
                    ),
                )
            )

        unbatched = run(False)
        batched = run(True)
        rate_unbatched = unbatched["report"]["throughput_rps"]
        rate_batched = batched["report"]["throughput_rps"]
        assert rate_unbatched > 0 and rate_batched > 0
        gain = rate_batched / rate_unbatched
        batches = batched["report"]["batch_sizes"]
        assert batches["mean"] > 2  # coalescing actually happened
        assert gain > 1.1, (
            f"batching gain {gain:.2f}x (batched {rate_batched:.0f} rps vs "
            f"unbatched {rate_unbatched:.0f} rps)"
        )
