"""Engine front-door behaviour: admission control, timeouts, shutdown,
cache-differential correctness and trace-ledger reconciliation."""

import asyncio
import random

import pytest

from repro.datagen import build_tree, paper_maps
from repro.geometry import Rect
from repro.join import sequential_join
from repro.rtree.query import nearest_neighbors, window_query
from repro.service import (
    Engine,
    EngineConfig,
    JoinRequest,
    KNNRequest,
    Status,
    WindowRequest,
)
from repro.trace import ListSink, run_checkers, service_checkers


@pytest.fixture(scope="module")
def workload():
    map1, map2 = paper_maps(scale=0.01)
    trees = {"map1": build_tree(map1), "map2": build_tree(map2)}
    return trees, map1.region.side


def random_window(rng, side, frac=0.1):
    extent = side * frac
    x = rng.uniform(0, side - extent)
    y = rng.uniform(0, side - extent)
    return Rect(x, y, x + extent, y + extent)


def window_oracle(tree, window):
    return tuple(sorted(e.oid for e in window_query(tree, window)))


class TestDifferentialCorrectness:
    def test_cached_results_equal_uncached_execution(self, workload):
        """Every response of a cache-enabled engine — hit or miss, batched
        or not — equals a direct uncached execution of the same query."""
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=256, batch_window_s=0.01, max_batch=8
        )
        rng = random.Random(21)
        windows = [random_window(rng, side) for _ in range(12)]
        wave = [WindowRequest("map1", w) for w in windows]
        wave += [
            KNNRequest("map1", rng.uniform(0, side), rng.uniform(0, side), k)
            for k in (1, 5, 17)
        ]
        wave.append(JoinRequest("map1", "map2", window=windows[0]))
        # Two identical waves: the second one is served from the cache.
        requests = wave + wave
        sink = ListSink()

        async def main():
            async with Engine(trees, config, sinks=[sink]) as engine:
                first = await asyncio.gather(
                    *(engine.submit(r) for r in wave)
                )
                second = await asyncio.gather(
                    *(engine.submit(r) for r in wave)
                )
                return first + second, engine

        responses, engine = asyncio.run(main())
        assert all(r.status is Status.OK for r in responses)
        assert any(r.cached for r in responses)
        for request, response in zip(requests, responses):
            if isinstance(request, WindowRequest):
                want = window_oracle(trees[request.tree], request.window)
            elif isinstance(request, KNNRequest):
                want = tuple(
                    (float(d), e.oid)
                    for d, e in nearest_neighbors(
                        trees[request.tree], request.x, request.y, k=request.k
                    )
                )
            else:
                pairs = sequential_join(trees["map1"], trees["map2"]).pairs
                keep_r = set(
                    window_oracle(trees["map1"], request.window)
                )
                keep_s = set(
                    window_oracle(trees["map2"], request.window)
                )
                want = tuple(
                    sorted(
                        (r, s)
                        for r, s in pairs
                        if r in keep_r and s in keep_s
                    )
                )
            assert response.value == want, request

        # Counter reconciliation: cache counters match the trace ledger
        # and the request counts (every admitted request did one lookup).
        cache = engine.cache
        assert cache.lookups == cache.hits + cache.misses
        assert cache.hits > 0
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [v.violations for v in verdicts]
        accounting = verdicts[0].stats
        assert accounting["cache_hits"] == cache.hits
        assert accounting["cache_misses"] == cache.misses
        assert accounting["cache_evictions"] == cache.evictions
        assert accounting["admitted"] == len(requests)
        assert cache.lookups == accounting["admitted"]


class TestAdmissionControl:
    def test_inflight_limit_rejects_and_recovers(self, workload):
        trees, side = workload
        config = EngineConfig(
            workers=0, max_inflight=16, cache_capacity=0,
            batch_window_s=0.005, max_batch=4,
        )

        async def main():
            async with Engine(trees, config) as engine:
                big = Rect(0, 0, side, side)
                responses = await asyncio.gather(
                    *(
                        engine.submit(WindowRequest("map1", big, cacheable=False))
                        for _ in range(80)
                    )
                )
                # After the burst drains, the engine admits again.
                late = await engine.submit(WindowRequest("map1", big))
                return responses, late, engine

        responses, late, engine = asyncio.run(main())
        statuses = {r.status for r in responses}
        assert Status.REJECTED in statuses
        assert Status.OK in statuses
        rejected = [r for r in responses if r.status is Status.REJECTED]
        assert all("limit" in r.detail for r in rejected)
        assert late.ok
        assert engine.metrics.rejected == len(rejected)

    def test_sustains_64_concurrent_inflight(self, workload):
        """≥ 64 window queries genuinely in flight at once, admission
        control engaged (rejections counted), no deadlock, clean stop."""
        trees, side = workload
        config = EngineConfig(
            workers=0, max_inflight=96, cache_capacity=0,
            batch_window_s=0.002, max_batch=16, default_timeout_s=30.0,
        )
        sink = ListSink()

        async def main():
            engine = Engine(trees, config, sinks=[sink])
            await engine.start()
            rng = random.Random(5)
            responses = await asyncio.gather(
                *(
                    engine.submit(
                        WindowRequest("map1", random_window(rng, side, 0.5))
                    )
                    for _ in range(300)
                )
            )
            await engine.stop()
            return responses, engine

        responses, engine = asyncio.run(main())
        outcomes = {r.status for r in responses}
        assert outcomes <= {Status.OK, Status.REJECTED}
        completed = sum(r.ok for r in responses)
        rejected = sum(r.status is Status.REJECTED for r in responses)
        assert completed + rejected == 300
        assert engine.metrics.queue_depth_max >= 64
        assert rejected > 0  # admission control engaged
        assert completed >= 96
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [v.violations for v in verdicts]

    def test_timeout_returns_timeout_status(self, workload):
        # A lone window request waits the full coalescing window (200 ms)
        # in the batcher, far past its 10 ms budget → deterministic timeout.
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=0,
            batch_window_s=0.2, max_batch=64,
        )

        async def main():
            async with Engine(trees, config) as engine:
                return await engine.submit(
                    WindowRequest("map1", Rect(0, 0, side, side)),
                    timeout=0.01,
                )

        response = asyncio.run(main())
        assert response.status is Status.TIMEOUT
        assert "timed out" in response.detail

    def test_per_class_limits_serialize_joins(self, workload):
        trees, _ = workload
        config = EngineConfig(
            workers=0, join_limit=1, cache_capacity=0,
            default_timeout_s=60.0,
        )

        async def main():
            async with Engine(trees, config) as engine:
                responses = await asyncio.gather(
                    *(engine.submit(JoinRequest("map1", "map2")) for _ in range(3))
                )
                return responses

        responses = asyncio.run(main())
        assert all(r.ok for r in responses)
        values = {r.value for r in responses}
        assert len(values) == 1  # identical answers


class TestErrorsAndShutdown:
    def test_unknown_tree_is_an_error_response(self, workload):
        trees, _ = workload

        async def main():
            async with Engine(trees, EngineConfig(workers=0)) as engine:
                return await engine.submit(
                    WindowRequest("nope", Rect(0, 0, 1, 1))
                )

        response = asyncio.run(main())
        assert response.status is Status.ERROR
        assert "nope" in response.detail

    def test_invalid_k_is_an_error_response(self, workload):
        trees, _ = workload

        async def main():
            async with Engine(trees, EngineConfig(workers=0)) as engine:
                return await engine.submit(KNNRequest("map1", 0, 0, 0))

        response = asyncio.run(main())
        assert response.status is Status.ERROR

    def test_submit_after_stop_rejected(self, workload):
        trees, _ = workload

        async def main():
            engine = Engine(trees, EngineConfig(workers=0))
            await engine.start()
            await engine.stop()
            return await engine.submit(WindowRequest("map1", Rect(0, 0, 1, 1)))

        response = asyncio.run(main())
        assert response.status is Status.REJECTED
        assert "not accepting" in response.detail

    def test_stop_drains_inflight_work(self, workload):
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=0, batch_window_s=0.01, max_batch=32
        )

        async def main():
            engine = Engine(trees, config)
            await engine.start()
            pending = [
                asyncio.create_task(
                    engine.submit(WindowRequest("map1", Rect(0, 0, side, side)))
                )
                for _ in range(20)
            ]
            await asyncio.sleep(0)  # let the submissions be admitted
            await engine.stop()
            return await asyncio.gather(*pending)

        responses = asyncio.run(main())
        # Everything admitted before the stop still completed.
        assert all(
            r.status in (Status.OK, Status.REJECTED) for r in responses
        )
        assert any(r.ok for r in responses)

    def test_engine_requires_trees(self):
        with pytest.raises(ValueError):
            Engine({})


@pytest.mark.slow
class TestForkedWorkers:
    def test_forked_pool_matches_oracle(self, workload):
        trees, side = workload
        config = EngineConfig(workers=2, cache_capacity=0)

        async def main():
            async with Engine(trees, config) as engine:
                forked = engine.pool.forked
                rng = random.Random(31)
                requests = [
                    WindowRequest("map1", random_window(rng, side))
                    for _ in range(20)
                ]
                requests.append(KNNRequest("map2", side / 2, side / 2, 7))
                responses = await asyncio.gather(
                    *(engine.submit(r) for r in requests)
                )
                return forked, requests, responses

        forked, requests, responses = asyncio.run(main())
        assert all(r.ok for r in responses)
        for request, response in zip(requests, responses):
            if isinstance(request, WindowRequest):
                assert response.value == window_oracle(
                    trees[request.tree], request.window
                )
            else:
                want = tuple(
                    (float(d), e.oid)
                    for d, e in nearest_neighbors(
                        trees["map2"], request.x, request.y, k=7
                    )
                )
                assert response.value == want
