"""Multi-window shared traversal and micro-batcher behaviour."""

import asyncio
import random

from repro.geometry import Rect
from repro.query import multi_window_query
from repro.rtree import RStarTree, str_bulk_load, window_query
from repro.service import Engine, EngineConfig, WindowRequest


def build_random_tree(seed, count=800):
    rng = random.Random(seed)
    items = []
    for i in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        items.append((i, Rect(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3))))
    return str_bulk_load(items, dir_capacity=8, data_capacity=8), items


class TestMultiWindowQuery:
    def test_matches_single_window_queries(self):
        tree, _ = build_random_tree(3)
        rng = random.Random(4)
        windows = []
        for _ in range(17):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            windows.append(Rect(x, y, x + rng.uniform(1, 25), y + rng.uniform(1, 25)))
        answers = multi_window_query(tree, windows)
        assert len(answers) == len(windows)
        for window, entries in zip(windows, answers):
            want = {e.oid for e in window_query(tree, window)}
            got = [e.oid for e in entries]
            assert len(got) == len(set(got))  # no duplicates per window
            assert set(got) == want

    def test_empty_batch(self):
        tree, _ = build_random_tree(5)
        assert multi_window_query(tree, []) == []

    def test_empty_tree(self):
        empty = RStarTree(dir_capacity=8, data_capacity=8)
        assert multi_window_query(empty, [Rect(0, 0, 1, 1)]) == [[]]

    def test_disjoint_windows_stay_separate(self):
        tree, items = build_random_tree(6)
        low = Rect(0, 0, 10, 10)
        high = Rect(80, 80, 100, 100)
        low_entries, high_entries = multi_window_query(tree, [low, high])
        assert {e.oid for e in low_entries} == {
            i for i, r in items if r.intersects(low)
        }
        assert {e.oid for e in high_entries} == {
            i for i, r in items if r.intersects(high)
        }


class TestMicroBatching:
    def test_concurrent_windows_coalesce(self):
        tree, items = build_random_tree(7)
        config = EngineConfig(
            workers=0,
            batching=True,
            batch_window_s=0.05,
            max_batch=64,
            cache_capacity=0,
        )

        async def main():
            async with Engine({"t": tree}, config) as engine:
                rng = random.Random(8)
                requests = []
                for _ in range(40):
                    x, y = rng.uniform(0, 80), rng.uniform(0, 80)
                    requests.append(
                        WindowRequest("t", Rect(x, y, x + 15, y + 15))
                    )
                responses = await asyncio.gather(
                    *(engine.submit(r) for r in requests)
                )
                return requests, responses, engine.metrics.batch_sizes

        requests, responses, batch_sizes = asyncio.run(main())
        assert all(r.ok for r in responses)
        # 40 requests arriving together within a 50 ms window coalesce
        # into far fewer batches, and at least one real batch formed.
        assert sum(batch_sizes) == 40
        assert len(batch_sizes) < 40
        assert max(batch_sizes) > 1
        for request, response in zip(requests, responses):
            want = tuple(
                sorted(i for i, r in items if r.intersects(request.window))
            )
            assert response.value == want
            assert response.batch_size >= 1

    def test_batching_off_means_batches_of_one(self):
        tree, _ = build_random_tree(9)
        config = EngineConfig(workers=0, batching=False, cache_capacity=0)

        async def main():
            async with Engine({"t": tree}, config) as engine:
                responses = await asyncio.gather(
                    *(
                        engine.submit(WindowRequest("t", Rect(0, 0, 50, 50)))
                        for _ in range(8)
                    )
                )
                return responses, engine.metrics.batch_sizes

        responses, batch_sizes = asyncio.run(main())
        assert all(r.ok and r.batch_size == 1 for r in responses)
        assert batch_sizes == []  # no batcher events without the batcher
