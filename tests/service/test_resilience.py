"""Units for the resilience primitives (retry policy, circuit breaker)
and the engine's degraded modes (serve-stale, shed) under open circuits."""

import asyncio
import random
import time

import pytest

from repro.datagen import build_tree, paper_maps
from repro.geometry import Rect
from repro.service import (
    CircuitBreaker,
    Engine,
    EngineConfig,
    RequestClass,
    RetryPolicy,
    Status,
    WindowRequest,
    WorkerError,
)
from repro.trace import EventKind, ListSink, run_checkers, service_checkers


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(1)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.4)
        assert policy.delay(4, rng) == pytest.approx(0.5)  # capped
        assert policy.delay(10, rng) == pytest.approx(0.5)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=1.0, multiplier=1.0, jitter=0.2
        )
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay(1, rng)
            assert 0.08 <= delay <= 0.12

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, random.Random(0))

    def test_next_delay_stops_at_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        rng = random.Random(0)
        assert policy.next_delay(1, rng, None) is not None
        assert policy.next_delay(2, rng, None) is not None
        assert policy.next_delay(3, rng, None) is None

    def test_next_delay_respects_deadline_budget(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.2, jitter=0.0, min_attempt_s=0.05
        )
        rng = random.Random(0)
        # Budget fits sleep (0.2) + minimum useful window (0.05).
        assert policy.next_delay(1, rng, 0.30) == pytest.approx(0.2)
        # Budget cannot fit the backoff plus a useful attempt: no retry.
        assert policy.next_delay(1, rng, 0.20) is None
        assert policy.next_delay(1, rng, 0.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, clock, sink=None, **kwargs):
        from repro.trace import Tracer

        tracer = (
            Tracer(clock=clock, sinks=[sink]) if sink is not None else None
        )
        defaults = dict(failure_threshold=3, reset_timeout_s=1.0, clock=clock)
        defaults.update(kwargs)
        if tracer is not None:
            defaults["tracer"] = tracer
        return CircuitBreaker("window", **defaults)

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_bounds_concurrent_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, half_open_max=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # third probe refused

    def test_transitions_are_traced_and_lawful(self):
        from repro.trace import ListSink

        clock = FakeClock()
        sink = ListSink()
        breaker = self.make(clock, sink=sink)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        kinds = [e.kind for e in sink.events]
        assert kinds == [
            EventKind.SUP_BREAKER_OPEN,
            EventKind.SUP_BREAKER_HALF_OPEN,
            EventKind.SUP_BREAKER_OPEN,
            EventKind.SUP_BREAKER_HALF_OPEN,
            EventKind.SUP_BREAKER_CLOSED,
        ]
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts)

    def test_release_returns_the_probe_slot(self):
        """An admission whose attempt is cancelled (no success/failure
        recorded) must not consume the half-open probe slot forever."""
        clock = FakeClock()
        breaker = self.make(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # the probe... whose awaiter is cancelled
        assert not breaker.allow()
        breaker.release()
        assert breaker.allow()  # slot is back; breaker not wedged
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_release_is_noop_when_closed(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.release()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_stuck_half_open_probe_is_reclaimed_after_reset_window(self):
        """Backstop: even if release() is never called, a probe slot with
        no outcome for a full reset_timeout_s is reclaimed rather than
        wedging the breaker in HALF_OPEN permanently."""
        clock = FakeClock()
        breaker = self.make(clock, half_open_max=1, reset_timeout_s=1.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # probe leaks: no outcome, no release
        assert not breaker.allow()
        clock.advance(0.5)
        assert not breaker.allow()  # within the reset window: still held
        clock.advance(0.6)
        assert breaker.allow()  # reclaimed
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_snapshot(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", reset_timeout_s=0.0)


@pytest.fixture(scope="module")
def workload():
    map1, map2 = paper_maps(scale=0.01)
    trees = {"map1": build_tree(map1), "map2": build_tree(map2)}
    return trees, map1.region.side


def _trip_all_breakers(engine):
    for breaker in engine.breakers.values():
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN


class TestDegradedModes:
    def test_open_circuit_serves_stale_cache(self, workload):
        """A cacheable request whose circuit is open is answered from the
        TTL-expired cache entry, flagged stale — not silently fresh."""
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=64, cache_ttl_s=0.05,
            serve_stale=True, breaker_reset_s=60.0,
        )
        sink = ListSink()
        window = Rect(0, 0, side / 4, side / 4)

        async def main():
            async with Engine(trees, config, sinks=[sink]) as engine:
                fresh = await engine.submit(WindowRequest("map1", window))
                await asyncio.sleep(0.1)  # let the TTL expire
                _trip_all_breakers(engine)
                degraded = await engine.submit(WindowRequest("map1", window))
                return fresh, degraded, engine

        fresh, degraded, engine = asyncio.run(main())
        assert fresh.ok and not fresh.stale
        assert degraded.status is Status.OK
        assert degraded.cached and degraded.stale
        assert degraded.value == fresh.value
        assert engine.cache.stale_hits == 1
        kinds = [e.kind for e in sink.events]
        assert EventKind.SVC_CACHE_STALE_HIT in kinds
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.name, v.violations) for v in verdicts if not v.ok
        ]
        # Metrics surface the stale serve distinctly.
        report = engine.metrics.report()
        assert report["stale_served"] == 1

    def test_open_circuit_sheds_when_nothing_cached(self, workload):
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=64, serve_stale=True,
            breaker_reset_s=60.0,
        )
        sink = ListSink()

        async def main():
            async with Engine(trees, config, sinks=[sink]) as engine:
                _trip_all_breakers(engine)
                return (
                    await engine.submit(
                        WindowRequest("map1", Rect(0, 0, 1, 1))
                    ),
                    engine,
                )

        response, engine = asyncio.run(main())
        assert response.status is Status.SHED
        assert "circuit" in response.detail or response.detail == ""
        kinds = [e.kind for e in sink.events]
        assert EventKind.SVC_REQUEST_SHED in kinds
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.name, v.violations) for v in verdicts if not v.ok
        ]
        assert engine.metrics.report()["shed"] == 1

    def test_serve_stale_disabled_always_sheds(self, workload):
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=64, cache_ttl_s=0.05,
            serve_stale=False, breaker_reset_s=60.0,
        )
        window = Rect(0, 0, side / 4, side / 4)

        async def main():
            async with Engine(trees, config) as engine:
                await engine.submit(WindowRequest("map1", window))
                await asyncio.sleep(0.1)
                _trip_all_breakers(engine)
                return await engine.submit(WindowRequest("map1", window))

        response = asyncio.run(main())
        assert response.status is Status.SHED

    def test_circuit_recovers_after_reset(self, workload):
        """Open circuit + elapsed reset window: the next request is the
        half-open probe; its success closes the circuit for good."""
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=0, breaker_reset_s=0.05,
        )
        window = Rect(0, 0, side / 4, side / 4)

        async def main():
            async with Engine(trees, config) as engine:
                _trip_all_breakers(engine)
                await asyncio.sleep(0.1)  # past the reset timeout
                probe = await engine.submit(WindowRequest("map1", window))
                after = await engine.submit(WindowRequest("map1", window))
                states = {
                    cls.value: b.state for cls, b in engine.breakers.items()
                }
                return probe, after, states

        probe, after, states = asyncio.run(main())
        assert probe.ok
        assert after.ok
        assert states[RequestClass.WINDOW.value] == CircuitBreaker.CLOSED

    def test_exhausted_deadline_does_not_leak_the_probe_slot(self, workload):
        """Regression: the budget-exhausted WorkerError used to fire
        *after* breaker.allow() had consumed the half-open probe slot,
        wedging the breaker in HALF_OPEN for good (every later request
        shed until restart).  The budget check now runs first."""
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=0, breaker_reset_s=0.05,
        )
        window = Rect(0, 0, side / 4, side / 4)

        async def main():
            async with Engine(trees, config) as engine:
                breaker = engine.breakers[RequestClass.WINDOW]
                for _ in range(breaker.failure_threshold):
                    breaker.record_failure()
                await asyncio.sleep(0.1)  # past the reset timeout
                # A request arriving with its deadline already spent
                # fails typed — and must not take the probe slot.
                with pytest.raises(WorkerError):
                    await engine._execute_with_retry(
                        RequestClass.WINDOW,
                        "windows",
                        ("map1", [tuple(window)]),
                        deadline=engine._now() - 1.0,
                    )
                probe = await engine.submit(WindowRequest("map1", window))
                return probe, breaker.state

        probe, state = asyncio.run(main())
        assert probe.ok
        assert state == CircuitBreaker.CLOSED

    def test_cancelled_probe_releases_the_slot(self, workload):
        """Regression: cancelling the submit-level wait while the probe
        attempt is in flight used to leak the slot (no success, no
        failure); the attempt's finally-release returns it."""
        trees, side = workload
        config = EngineConfig(
            workers=0, cache_capacity=0, breaker_reset_s=0.05,
            batching=False,
        )
        window = Rect(0, 0, side / 4, side / 4)

        async def main():
            async with Engine(trees, config) as engine:
                breaker = engine.breakers[RequestClass.WINDOW]
                for _ in range(breaker.failure_threshold):
                    breaker.record_failure()
                await asyncio.sleep(0.1)  # half-open on next allow()
                task = asyncio.ensure_future(
                    engine._execute_with_retry(
                        RequestClass.WINDOW,
                        "windows",
                        ("map1", [tuple(window)]),
                        deadline=None,
                    )
                )
                await asyncio.sleep(0)  # let it take the probe slot
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                probe = await engine.submit(WindowRequest("map1", window))
                return probe, breaker.state

        probe, state = asyncio.run(main())
        assert probe.ok
        assert state == CircuitBreaker.CLOSED
