"""Tests for the benchmark harness and experiment drivers (tiny scale)."""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    Workload,
    ablation_tuning_techniques,
    active_scale,
    get_workload,
    heading,
    render_series,
    render_table,
    scaled_pages,
    table1_rows,
    table2_rows,
)
from repro.bench.harness import _CACHE


class TestHarness:
    def test_get_workload_cached(self):
        a = get_workload(0.005)
        b = get_workload(0.005)
        assert a is b
        assert isinstance(a, Workload)
        assert len(a.map1) > 0
        assert a.tree1.size == len(a.map1)

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert active_scale() == 0.5
        monkeypatch.delenv("REPRO_SCALE")
        assert active_scale() == 0.25

    def test_scaled_pages(self):
        assert scaled_pages(800, 1.0) == 800
        assert scaled_pages(800, 0.25) == 200
        assert scaled_pages(8, 0.1) == 4  # floor of 4 pages


class TestTables:
    def test_table1_rows_structure(self):
        rows = table1_rows(get_workload(0.005))
        assert [r["parameter"] for r in rows] == [
            "height",
            "number of data entries",
            "number of data pages",
            "number of directory pages",
            "m (number of tasks)",
        ]
        entries_row = rows[1]
        assert entries_row["tree1"] == len(get_workload(0.005).map1)
        assert entries_row["paper tree1"] == PAPER_TABLE1["tree1"][
            "number of data entries"
        ]

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 3
        assert rows[0]["memory"] == "cache"
        assert rows[2]["band width (MB/sec)"] == 32.0
        # Remote page copies are slower than local ones.
        assert rows[2]["4KB page copy (usec)"] > rows[1]["4KB page copy (usec)"]


class TestAblationDrivers:
    def test_tuning_ablation_rows(self):
        rows = ablation_tuning_techniques(get_workload(0.005))
        assert len(rows) == 4
        candidates = {r["candidates"] for r in rows}
        assert len(candidates) == 1


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], ["a", "b"]
        )
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_render_table_empty(self):
        assert render_table([], ["a"]) == "(no rows)"

    def test_render_table_missing_cell(self):
        out = render_table([{"a": 1}], ["a", "b"])
        assert "-" in out

    def test_render_series(self):
        assert render_series("s", [(1, 2.0), (2, 4.0)]) == "s: 1=2.00  2=4.00"

    def test_heading(self):
        out = heading("Title")
        assert "Title" in out and "=====" in out

    def test_float_formatting(self):
        out = render_table([{"x": 12345.6}, {"x": 0.00123}, {"x": 0.0}], ["x"])
        assert "12346" in out
        assert "0.0012" in out


class TestAsciiChart:
    def test_basic_shape(self):
        from repro.bench import ascii_chart

        out = ascii_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 2.0), (2, 1.0)]},
            width=20,
            height=5,
            x_label="n",
            y_label="y",
        )
        lines = out.splitlines()
        assert lines[0].startswith("y")
        assert any("o" in line for line in lines)
        assert any("x" in line for line in lines)
        assert "o = a" in lines[-1] and "x = b" in lines[-1]

    def test_empty(self):
        from repro.bench import ascii_chart

        assert ascii_chart({}) == "(no data)"

    def test_single_point(self):
        from repro.bench import ascii_chart

        out = ascii_chart({"s": [(5, 5)]}, width=10, height=4)
        assert "o" in out
