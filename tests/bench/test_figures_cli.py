"""Tests for the figure drivers and the CLI runner at tiny scale."""

import pytest

from repro.bench import (
    ablation_task_order,
    figure5,
    figure7,
    figure8,
    figure9_and_10,
    get_workload,
)
from repro.bench.__main__ import main as cli_main


@pytest.fixture(scope="module")
def tiny():
    return get_workload(0.01)


class TestFigureDrivers:
    def test_figure5_rows(self, tiny):
        rows = figure5(tiny)
        # 2 processor counts x 5 buffer sizes.
        assert len(rows) == 10
        for row in rows:
            assert row["processors"] in (8, 24)
            for variant in ("lsr", "gsrr", "gd"):
                assert row[variant] > 0

    def test_figure7_rows(self, tiny):
        rows = figure7(tiny)
        assert len(rows) == 9  # 3 variants x 3 policies
        for row in rows:
            assert row["first (s)"] <= row["avg (s)"] <= row["last (s)"]
        gd_without = next(
            r for r in rows
            if r["variant"] == "gd" and r["reassignment"] == "without"
        )
        gd_root = next(
            r for r in rows
            if r["variant"] == "gd" and r["reassignment"] == "root level"
        )
        assert gd_without["last (s)"] == gd_root["last (s)"]

    def test_figure8_rows(self, tiny):
        rows = figure8(tiny)
        assert [r["variant"] for r in rows] == ["lsr", "gsrr", "gd"]
        for row in rows:
            assert row["a: max load"] > 0
            assert row["b: arbitrary"] > 0

    def test_figure9_rows(self, tiny):
        rows = figure9_and_10(tiny)
        assert len(rows) == 3 * 8  # 3 series x 8 processor counts
        for row in rows:
            if row["processors"] == 1:
                assert row["speedup"] == pytest.approx(1.0)
            assert row["response (s)"] > 0

    def test_ablation_task_order_rows(self, tiny):
        rows = ablation_task_order(tiny)
        assert len(rows) == 6
        orders = {r["task order"] for r in rows}
        assert orders == {"plane-sweep order", "shuffled"}


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_no_args_lists(self, capsys):
        assert cli_main([]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])

    def test_run_table2(self, capsys):
        assert cli_main(["--scale", "0.01", "table2"]) == 0
        out = capsys.readouterr().out
        assert "main memory of other processors" in out

    def test_run_table1_tiny(self, capsys):
        assert cli_main(["--scale", "0.01", "table1"]) == 0
        out = capsys.readouterr().out
        assert "m (number of tasks)" in out
