"""Unit tests for the lease table under a hand-cranked clock."""

import pytest

from repro.recovery import Lease, LeaseError, LeaseState, LeaseTable
from repro.trace import EventKind, ListSink, Tracer


class Clock:
    """A mutable fake clock: ``clock()`` reads, ``clock.advance()`` moves."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def table(clock):
    return LeaseTable(clock=clock, lease_s=2.0, heartbeat_s=0.5)


class TestGrantAndClose:
    def test_grant_is_active_with_deadline(self, table, clock):
        lease = table.grant(task=7, holder=1)
        assert lease.active
        assert lease.task == 7 and lease.holder == 1
        assert lease.deadline == pytest.approx(clock.now + 2.0)
        assert table.is_active(lease.id)
        assert table.find_active(7, 1) is lease

    def test_complete_closes_once(self, table):
        lease = table.grant(task=0, holder=0)
        table.complete(lease.id, rows=3)
        assert lease.state is LeaseState.COMPLETED
        assert not table.is_active(lease.id)
        with pytest.raises(LeaseError):
            table.complete(lease.id)
        with pytest.raises(LeaseError):
            table.expire(lease.id)

    def test_expire_closes_once(self, table):
        lease = table.grant(task=0, holder=0)
        table.expire(lease.id, reason="test")
        assert lease.state is LeaseState.EXPIRED
        with pytest.raises(LeaseError):
            table.renew(lease.id)

    def test_unknown_lease_rejected(self, table):
        with pytest.raises(LeaseError):
            table.renew(99)
        with pytest.raises(LeaseError):
            table.complete(99)


class TestSweep:
    def test_sweep_expires_only_overdue(self, table, clock):
        early = table.grant(task=0, holder=0)
        clock.advance(1.5)
        late = table.grant(task=1, holder=1)
        clock.advance(1.0)  # early is 2.5s old, late only 1.0s
        overdue = table.sweep()
        assert [l.id for l in overdue] == [early.id]
        assert not table.is_active(early.id)
        assert table.is_active(late.id)

    def test_renewal_defers_expiry(self, table, clock):
        lease = table.grant(task=0, holder=0)
        clock.advance(1.5)
        table.renew(lease.id)
        clock.advance(1.5)  # 3.0s after grant, 1.5s after renewal
        assert table.sweep() == []
        assert table.is_active(lease.id)

    def test_sweep_on_time_is_idempotent(self, table, clock):
        table.grant(task=0, holder=0)
        clock.advance(5.0)
        assert len(table.sweep()) == 1
        assert table.sweep() == []


class TestHolderHeartbeat:
    def test_renew_holder_touches_all_held_leases(self, table, clock):
        a = table.grant(task=0, holder=2)
        b = table.grant(task=1, holder=2, split=True)
        other = table.grant(task=2, holder=3)
        clock.advance(1.0)
        assert table.renew_holder(2) == 2
        assert a.deadline == b.deadline == pytest.approx(clock.now + 2.0)
        assert other.deadline == pytest.approx(2.0)

    def test_renew_holder_throttled_by_heartbeat(self, table, clock):
        table.grant(task=0, holder=0)
        assert table.renew_holder(0) == 1
        clock.advance(0.1)  # within heartbeat_s=0.5
        assert table.renew_holder(0) == 0
        clock.advance(0.5)
        assert table.renew_holder(0) == 1


class TestTracingAndStats:
    def test_lifecycle_emits_lease_events(self, clock):
        sink = ListSink()
        tracer = Tracer(clock=clock, sinks=[sink])
        table = LeaseTable(clock=clock, lease_s=2.0, tracer=tracer)
        done = table.grant(task=0, holder=0)
        lost = table.grant(task=1, holder=1)
        table.renew(done.id)
        table.complete(done.id, rows=5)
        clock.advance(9.0)
        table.sweep()
        kinds = [e.kind for e in sink.events]
        assert kinds == [
            EventKind.LSE_GRANTED,
            EventKind.LSE_GRANTED,
            EventKind.LSE_RENEWED,
            EventKind.LSE_COMPLETED,
            EventKind.LSE_EXPIRED,
        ]
        completed = sink.events[3]
        assert completed.data["rows"] == 5 and completed.data["task"] == 0
        expired = sink.events[4]
        assert expired.data["task"] == 1 and expired.data["reason"] == "deadline"
        assert expired.data["lease"] == lost.id

    def test_stats_reconcile(self, table, clock):
        for task in range(4):
            table.grant(task=task, holder=task % 2)
        table.complete(0)
        clock.advance(9.0)
        table.sweep()
        stats = table.stats()
        assert stats["granted"] == 4
        assert stats["completed"] == 1
        assert stats["expired"] == 3
        assert stats["active"] == 0

    def test_invalid_lease_s_rejected(self, clock):
        with pytest.raises(ValueError):
            LeaseTable(clock=clock, lease_s=0.0)
