"""Unit tests for the CRC-framed join journal: round-trips, torn tails,
first-wins completions, and self-healing appends."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.recovery import JoinJournal, scan_journal
from repro.trace import EventKind, ListSink, Tracer


class TestRoundTrip:
    def test_records_survive_close_and_scan(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path) as journal:
            journal.append("meta", mode="test", tasks=2)
            journal.append("grant", task=0, holder=1)
            journal.append("complete", task=0, rows=[[1, 2], [3, 4]])
        scan = scan_journal(path)
        assert scan.torn == 0
        assert scan.meta == {"type": "meta", "mode": "test", "tasks": 2}
        assert scan.completions()[0]["rows"] == [[1, 2], [3, 4]]
        assert scan.grants() == [{"type": "grant", "task": 0, "holder": 1}]

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(str(tmp_path / "absent.jnl"))
        assert scan.records == [] and scan.torn == 0

    def test_first_completion_wins(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path) as journal:
            journal.append("complete", task=3, rows=[[1, 1]])
            journal.append("complete", task=3, rows=[[9, 9]])
        assert scan_journal(path).completions()[3]["rows"] == [[1, 1]]

    def test_reopen_appends_after_existing(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path) as journal:
            journal.append("complete", task=0, rows=[])
        with JoinJournal(path) as journal:
            assert set(journal.existing.completions()) == {0}
            journal.append("complete", task=1, rows=[])
        assert set(scan_journal(path).completions()) == {0, 1}


class TestTornWrites:
    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path) as journal:
            journal.append("complete", task=0, rows=[[1, 2]])
            journal.append("complete", task=1, rows=[[3, 4]])
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-7])  # emulate a crash mid-write
        scan = scan_journal(path)
        assert scan.torn == 1
        assert scan.completions()[0]["rows"] == [[1, 2]]

    def test_corrupted_byte_fails_the_crc_frame(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path) as journal:
            journal.append("complete", task=0, rows=[[1, 2]])
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[12] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        scan = scan_journal(path)
        assert scan.torn == 1 and scan.completions() == {}

    def test_injected_tear_self_heals_on_next_append(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        injector = FaultInjector(FaultPlan(seed=11, torn_append_p=1.0))
        with JoinJournal(path, injector=injector) as journal:
            journal.append("complete", task=0, rows=[[1, 2]])
            assert journal.torn_appends == 1
        # The torn record is unreadable, but the file stays appendable:
        # the next (intact) append terminates the torn line first.
        with JoinJournal(path) as journal:
            journal.append("complete", task=1, rows=[[3, 4]])
        scan = scan_journal(path)
        assert scan.torn == 1
        assert set(scan.completions()) == {1}

    def test_scan_traces_torn_totals(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        injector = FaultInjector(FaultPlan(seed=2, torn_append_p=1.0))
        with JoinJournal(path, injector=injector) as journal:
            journal.append("complete", task=0, rows=[])
        sink = ListSink()
        scan_journal(path, tracer=Tracer(sinks=[sink]))
        kinds = [e.kind for e in sink.events]
        assert kinds.count(EventKind.JNL_TORN_DETECTED) == 1
        scanned = [e for e in sink.events if e.kind is EventKind.JNL_SCANNED]
        assert len(scanned) == 1 and scanned[0].data["torn"] == 1


class TestAppendGuards:
    def test_append_after_close_raises(self, tmp_path):
        journal = JoinJournal(str(tmp_path / "join.jnl"))
        journal.close()
        with pytest.raises(ValueError):
            journal.append("meta")

    def test_fsync_mode_round_trips(self, tmp_path):
        path = str(tmp_path / "join.jnl")
        with JoinJournal(path, fsync=True) as journal:
            journal.append("complete", task=0, rows=[[5, 6]])
        assert scan_journal(path).completions()[0]["rows"] == [[5, 6]]
