"""The fork-path fault-tolerant join: chunked leases, redispatch after
worker death, interrupt-then-resume through the durable journal."""

import multiprocessing

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.join import sequential_join
from repro.join.mp import fault_tolerant_join
from repro.join.parallel import prepare_trees
from repro.recovery import (
    JoinInterrupted,
    RecoveryConfig,
    ResumeReport,
    resume_join,
    run_recoverable_join,
)
from repro.trace import ListSink, Tracer, recovery_checkers, run_checkers

FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK, reason="requires the fork start method")

FAST = RecoveryConfig(lease_s=5.0, heartbeat_s=0.5, sweep_s=0.05)


@pytest.fixture(scope="module")
def trees():
    m1, m2 = paper_maps(scale=0.01)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    prepare_trees(tree_r, tree_s)
    return tree_r, tree_s


@pytest.fixture(scope="module")
def expected(trees):
    return sequential_join(*trees).pair_set()


def assert_lawful(sink):
    for verdict in run_checkers(sink.events, recovery_checkers()):
        assert verdict.ok, (verdict.checker, verdict.violations)


class TestHealthyRuns:
    @needs_fork
    def test_matches_sequential(self, trees, expected):
        pairs, stats = fault_tolerant_join(*trees, 2, recovery=FAST)
        assert set(pairs) == expected
        assert len(pairs) == len(set(pairs))
        assert stats["redispatches"] == 0
        assert stats["tasks_committed"] == stats["chunks"]

    def test_serial_fallback_matches(self, trees, expected):
        pairs, stats = fault_tolerant_join(*trees, 1, recovery=FAST)
        assert set(pairs) == expected
        assert stats["tasks_committed"] == stats["chunks"]

    def test_empty_trees(self):
        from repro.rtree import RStarTree

        empty = RStarTree()
        pairs, stats = fault_tolerant_join(empty, empty, 2, recovery=FAST)
        assert pairs == [] and stats["chunks"] == 0


class TestKilledWorkers:
    @needs_fork
    def test_targeted_kills_are_redispatched(self, trees, expected):
        sink = ListSink()
        pairs, stats = fault_tolerant_join(
            *trees,
            2,
            recovery=FAST,
            faults=FaultPlan(seed=1, kill_at_task=(0, 7)),
            tracer=Tracer(sinks=[sink]),
        )
        assert set(pairs) == expected
        assert len(pairs) == len(set(pairs))
        assert stats["redispatches"] >= 1
        assert stats["expired"] >= 1
        assert stats["fault_counts"]["task_kills"] >= 1
        assert_lawful(sink)

    @needs_fork
    def test_probabilistic_kills_still_exactly_once(self, trees, expected):
        sink = ListSink()
        pairs, stats = fault_tolerant_join(
            *trees,
            2,
            recovery=FAST,
            faults=FaultPlan(seed=9, task_kill_p=0.4),
            tracer=Tracer(sinks=[sink]),
        )
        assert set(pairs) == expected
        assert len(pairs) == len(set(pairs))
        assert_lawful(sink)


class TestInterruptAndResume:
    @needs_fork
    def test_stop_after_commits_raises_and_resume_finishes(
        self, trees, expected, tmp_path
    ):
        journal = str(tmp_path / "mp.jnl")
        stopping = RecoveryConfig(
            lease_s=5.0,
            heartbeat_s=0.5,
            sweep_s=0.05,
            journal_path=journal,
            stop_after_commits=3,
        )
        with pytest.raises(JoinInterrupted):
            fault_tolerant_join(*trees, 2, recovery=stopping)

        report = resume_join(journal, *trees, processes=2, recovery=FAST)
        assert isinstance(report, ResumeReport)
        assert set(report.pairs) == expected
        assert len(report.pairs) == len(set(report.pairs))
        assert report.replayed_chunks >= 3
        assert report.rerun_chunks >= 1
        assert report.complete

    def test_run_recoverable_join_is_resume_with_an_empty_journal(
        self, trees, expected, tmp_path
    ):
        journal = str(tmp_path / "mp.jnl")
        report = run_recoverable_join(
            *trees, journal_path=journal, processes=1, recovery=FAST
        )
        assert set(report.pairs) == expected
        assert report.replayed_chunks == 0
        assert report.complete

        # Resuming a finished join re-runs nothing.
        again = resume_join(journal, *trees, processes=1, recovery=FAST)
        assert set(again.pairs) == expected
        assert again.rerun_chunks == 0
        assert again.replayed_chunks == report.rerun_chunks

    def test_resume_against_other_trees_is_rejected(self, trees, tmp_path):
        journal = str(tmp_path / "mp.jnl")
        run_recoverable_join(
            *trees, journal_path=journal, processes=1, recovery=FAST
        )
        m1, m2 = paper_maps(scale=0.02)
        other_r, other_s = build_tree(m1), build_tree(m2)
        prepare_trees(other_r, other_s)
        with pytest.raises(ValueError, match="journal"):
            resume_join(journal, other_r, other_s, processes=1, recovery=FAST)
