"""Recoverable simulated joins: leases on, processors killed mid-join,
orphans requeued in-run, and whole-run resume from the durable journal."""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.recovery import RecoveryConfig
from repro.trace import TraceConfig

SCALE = 0.02
PROCS = 4


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=SCALE)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return tree_r, tree_s, page_store, expected


def run(workload, **kwargs):
    tree_r, tree_s, page_store, _ = workload
    kwargs.setdefault("processors", PROCS)
    kwargs.setdefault("trace", TraceConfig())
    config = ParallelJoinConfig(**kwargs)
    return parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


def assert_lawful(result):
    result.trace.verify()
    verdict = result.trace.verdict("recovery-accounting")
    assert verdict.ok, verdict.violations
    return verdict


class TestHealthyRecoveryRuns:
    @pytest.mark.parametrize("variant", [LSR, GSRR, GD], ids=lambda v: v.short_name)
    def test_leases_do_not_change_the_answer(self, workload, variant):
        result = run(workload, variant=variant, recovery=RecoveryConfig())
        assert result.pair_set() == workload[3]
        assert result.recovery["complete"]
        assert result.recovery["orphans_requeued"] == 0
        assert result.recovery["expired"] == 0
        assert_lawful(result)

    def test_recovery_off_reports_none(self, workload):
        result = run(workload)
        assert result.recovery is None
        assert result.replayed_pairs == []


class TestInRunOrphanRecovery:
    @pytest.mark.parametrize("variant", [LSR, GSRR, GD], ids=lambda v: v.short_name)
    def test_partial_kills_recover_without_resume(self, workload, variant):
        result = run(
            workload,
            variant=variant,
            recovery=RecoveryConfig(lease_s=0.05, heartbeat_s=0.01, sweep_s=0.01),
            faults=FaultPlan(
                seed=7, kill_processor_at_event=((1, 3), (2, 5))
            ),
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        )
        assert result.pair_set() == workload[3]
        assert result.recovery["complete"]
        assert result.recovery["orphans_requeued"] > 0
        assert result.recovery["expired"] > 0
        verdict = assert_lawful(result)
        assert verdict.stats["task_kills"] == 2
        assert verdict.stats["requeues"] == result.recovery["orphans_requeued"]

    def test_probabilistic_kills_never_lose_or_duplicate_rows(self, workload):
        result = run(
            workload,
            variant=GD,
            recovery=RecoveryConfig(lease_s=0.05, heartbeat_s=0.01, sweep_s=0.01),
            faults=FaultPlan(seed=3, task_kill_p=0.3),
        )
        # Kills may take out every processor — then the run is lawfully
        # incomplete; otherwise the answer must be exact either way.
        if result.recovery["complete"]:
            assert result.pair_set() == workload[3]
        else:
            assert result.pair_set() <= workload[3]
        assert_lawful(result)


class TestJournalResume:
    def test_killing_every_processor_then_resume_is_exactly_once(
        self, workload, tmp_path
    ):
        journal = str(tmp_path / "sim.jnl")
        recovery = RecoveryConfig(
            lease_s=0.05, heartbeat_s=0.01, sweep_s=0.01, journal_path=journal
        )
        kills = tuple((p, 2) for p in range(PROCS))
        crashed = run(
            workload,
            recovery=recovery,
            faults=FaultPlan(seed=5, kill_processor_at_event=kills),
        )
        assert not crashed.recovery["complete"]
        assert crashed.recovery["tasks_committed"] < crashed.tasks_created
        # Even the incomplete run's trace must be lawful: every grant
        # closed, every orphan requeued, no rows double-counted.
        assert_lawful(crashed)

        resumed = run(workload, recovery=recovery)
        assert resumed.recovery["complete"]
        assert resumed.pair_set() == workload[3]
        # Committed tasks came back via journal replay, not re-execution.
        assert (
            resumed.recovery["tasks_replayed"]
            == crashed.recovery["tasks_committed"]
        )
        assert set(resumed.replayed_pairs) <= workload[3]
        verdict = assert_lawful(resumed)
        assert verdict.stats["replayed"] == resumed.recovery["tasks_replayed"]

    def test_resume_of_a_complete_run_replays_everything(
        self, workload, tmp_path
    ):
        journal = str(tmp_path / "sim.jnl")
        recovery = RecoveryConfig(journal_path=journal)
        first = run(workload, recovery=recovery)
        assert first.recovery["complete"]
        again = run(workload, recovery=recovery)
        assert again.recovery["tasks_replayed"] == first.tasks_created
        assert again.recovery["tasks_committed"] == 0
        assert again.pair_set() == workload[3]
        assert_lawful(again)

    def test_mismatched_trees_are_rejected(self, workload, tmp_path):
        journal = str(tmp_path / "sim.jnl")
        recovery = RecoveryConfig(journal_path=journal)
        run(workload, recovery=recovery)
        m1, m2 = paper_maps(scale=0.01)
        other_r, other_s = build_tree(m1), build_tree(m2)
        page_store = prepare_trees(other_r, other_s)
        with pytest.raises(ValueError, match="journal"):
            parallel_spatial_join(
                other_r,
                other_s,
                ParallelJoinConfig(processors=PROCS, recovery=recovery),
                page_store=page_store,
            )
