"""Tests for the synthetic TIGER-like map generators."""

import pytest

from repro.datagen import (
    MAP1_COUNT,
    MAP2_COUNT,
    MapData,
    Region,
    build_tree,
    generate_boundaries,
    generate_streets,
    paper_maps,
)
from repro.geometry import sweep_pairs, x_sorted
from repro.rtree import tree_stats


class TestRegion:
    def test_scale_controls_side(self):
        assert Region(scale=1.0).side == pytest.approx(1.0)
        assert Region(scale=0.25).side == pytest.approx(0.5)

    def test_scale_positive(self):
        with pytest.raises(ValueError):
            Region(scale=0)

    def test_deterministic(self):
        a = Region(scale=0.5, seed=7)
        b = Region(scale=0.5, seed=7)
        assert a.cities == b.cities
        assert a.city_weights == b.city_weights

    def test_city_weights_normalised(self):
        region = Region(scale=1.0)
        assert sum(region.city_weights) == pytest.approx(1.0)
        assert all(w > 0 for w in region.city_weights)

    def test_settlement_points_inside_region(self):
        import random

        region = Region(scale=0.3, seed=3)
        rng = random.Random(0)
        for _ in range(200):
            x, y = region.sample_settlement_point(rng)
            assert region.bounds.contains_point(x, y)

    def test_pick_city_respects_weights(self):
        import random

        region = Region(scale=1.0, seed=5)
        rng = random.Random(1)
        counts = [0] * len(region.cities)
        for _ in range(3000):
            counts[region.pick_city(rng)] += 1
        heaviest = max(range(len(counts)), key=lambda i: region.city_weights[i])
        assert counts[heaviest] == max(counts)


class TestGenerators:
    def test_street_count_and_ids(self):
        region = Region(scale=0.05, seed=1)
        streets = generate_streets(region, 500, seed=2)
        assert len(streets) == 500
        assert [o.oid for o in streets] == list(range(500))

    def test_streets_inside_region(self):
        region = Region(scale=0.05, seed=1)
        for obj in generate_streets(region, 300, seed=2):
            assert region.bounds.contains(obj.mbr)

    def test_streets_deterministic(self):
        region = Region(scale=0.05, seed=1)
        a = generate_streets(region, 100, seed=2)
        b = generate_streets(region, 100, seed=2)
        assert [o.mbr for o in a] == [o.mbr for o in b]

    def test_streets_are_small(self):
        region = Region(scale=0.05, seed=1)
        streets = generate_streets(region, 300, seed=2)
        mean_extent = sum(o.mbr.width() + o.mbr.height() for o in streets) / 300
        assert mean_extent < 0.01 * region.side

    def test_geometry_optional(self):
        region = Region(scale=0.05, seed=1)
        bare = generate_streets(region, 10, seed=2)
        rich = generate_streets(region, 10, seed=2, include_geometry=True)
        assert all(o.points is None for o in bare)
        assert all(o.points is not None and len(o.points) >= 2 for o in rich)
        # Geometry must stay inside the stated MBR.
        for obj in rich:
            from repro.geometry import Rect

            assert obj.mbr == Rect.from_points(obj.points)

    def test_boundaries_count_and_region(self):
        region = Region(scale=0.05, seed=1)
        objs = generate_boundaries(region, 400, seed=3)
        assert len(objs) == 400
        for obj in objs:
            assert region.bounds.contains(obj.mbr)

    def test_boundaries_mix_validated(self):
        region = Region(scale=0.05, seed=1)
        with pytest.raises(ValueError):
            generate_boundaries(region, 10, seed=3, mix=(0.5, 0.2, 0.2))

    def test_boundaries_include_long_and_short_features(self):
        region = Region(scale=0.2, seed=1)
        objs = generate_boundaries(region, 2000, seed=3)
        extents = sorted(max(o.mbr.width(), o.mbr.height()) for o in objs)
        assert extents[0] < extents[-1]  # heterogeneous feature sizes


class TestPaperMaps:
    def test_counts_scale(self):
        m1, m2 = paper_maps(scale=0.01)
        assert len(m1) == round(MAP1_COUNT * 0.01)
        assert len(m2) == round(MAP2_COUNT * 0.01)

    def test_shared_region(self):
        m1, m2 = paper_maps(scale=0.01)
        assert m1.region is m2.region

    def test_deterministic(self):
        a1, a2 = paper_maps(scale=0.01, seed=9)
        b1, b2 = paper_maps(scale=0.01, seed=9)
        assert [o.mbr for o in a1.objects] == [o.mbr for o in b1.objects]
        assert [o.mbr for o in a2.objects] == [o.mbr for o in b2.objects]

    def test_different_seeds_differ(self):
        a1, _ = paper_maps(scale=0.01, seed=9)
        b1, _ = paper_maps(scale=0.01, seed=10)
        assert [o.mbr for o in a1.objects] != [o.mbr for o in b1.objects]

    def test_items_format(self):
        m1, _ = paper_maps(scale=0.005)
        items = m1.items()
        assert len(items) == len(m1)
        oid, rect = items[0]
        assert isinstance(oid, int)
        assert rect == m1.objects[0].mbr


class TestBuildTree:
    def test_tree_holds_all_objects(self):
        m1, _ = paper_maps(scale=0.02)
        tree = build_tree(m1)
        assert len(tree) == len(m1)
        tree.validate()

    def test_medium_scale_shape_is_paper_like(self):
        # At 1/4 scale the trees already have the paper's height of 3 and
        # a healthy number of intersecting root pairs (m scales with the
        # root fan-out, not with the object count).
        m1, m2 = paper_maps(scale=0.25)
        t1, t2 = build_tree(m1), build_tree(m2)
        assert t1.height == 3
        assert t2.height == 3
        s1 = tree_stats(t1)
        assert 0.6 <= s1.avg_leaf_fill <= 0.85
        m = len(sweep_pairs(x_sorted(t1.root.entries), x_sorted(t2.root.entries)))
        assert 40 <= m <= 1200
