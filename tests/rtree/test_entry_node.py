"""Unit tests for R*-tree entries and nodes."""

import pytest

from repro.geometry import Rect
from repro.rtree import Entry, Node


class TestEntry:
    def test_data_entry(self):
        e = Entry.for_object(Rect(0, 0, 1, 1), oid="a")
        assert e.is_data
        assert e.oid == "a"
        assert e.child is None
        assert e.rect == Rect(0, 0, 1, 1)

    def test_child_entry(self):
        leaf = Node(0, [Entry.for_object(Rect(0, 0, 1, 1), oid="a")])
        e = Entry.for_child(leaf)
        assert not e.is_data
        assert e.child is leaf
        assert e.rect == Rect(0, 0, 1, 1)

    def test_must_be_exactly_one_kind(self):
        with pytest.raises(ValueError):
            Entry(0, 0, 1, 1)
        with pytest.raises(ValueError):
            Entry(0, 0, 1, 1, child=Node(0), oid="a")

    def test_area_margin(self):
        e = Entry.for_object(Rect(0, 0, 2, 3), oid=1)
        assert e.area() == 6.0
        assert e.margin() == 5.0

    def test_intersects(self):
        a = Entry.for_object(Rect(0, 0, 2, 2), oid=1)
        b = Entry.for_object(Rect(1, 1, 3, 3), oid=2)
        c = Entry.for_object(Rect(5, 5, 6, 6), oid=3)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_intersects_rect_ducktyped(self):
        e = Entry.for_object(Rect(0, 0, 2, 2), oid=1)
        assert e.intersects(Rect(1, 1, 3, 3))

    def test_overlap_area(self):
        a = Entry.for_object(Rect(0, 0, 2, 2), oid=1)
        b = Entry.for_object(Rect(1, 1, 3, 3), oid=2)
        assert a.overlap_area(b) == 1.0
        # Touching edges have zero overlap area.
        c = Entry.for_object(Rect(2, 0, 3, 2), oid=3)
        assert a.overlap_area(c) == 0.0

    def test_enlargement(self):
        a = Entry.for_object(Rect(0, 0, 1, 1), oid=1)
        assert a.enlargement(Entry.for_object(Rect(0, 0, 1, 1), oid=2)) == 0.0
        assert a.enlargement(Entry.for_object(Rect(2, 0, 3, 1), oid=2)) == pytest.approx(2.0)

    def test_extend(self):
        a = Entry.for_object(Rect(0, 0, 1, 1), oid=1)
        a.extend(Entry.for_object(Rect(2, -1, 3, 0.5), oid=2))
        assert a.rect == Rect(0, -1, 3, 1)

    def test_set_mbr(self):
        a = Entry.for_object(Rect(0, 0, 1, 1), oid=1)
        a.set_mbr(5, 5, 6, 6)
        assert a.rect == Rect(5, 5, 6, 6)

    def test_center(self):
        assert Entry.for_object(Rect(0, 0, 2, 4), oid=1).center() == (1.0, 2.0)


class TestNode:
    def test_leaf_flag(self):
        assert Node(0).is_leaf
        assert not Node(1).is_leaf

    def test_mbr_tuple(self):
        node = Node(
            0,
            [
                Entry.for_object(Rect(0, 0, 1, 1), oid=1),
                Entry.for_object(Rect(2, -1, 3, 0.5), oid=2),
            ],
        )
        assert node.mbr_tuple() == (0, -1, 3, 1)

    def test_empty_mbr_raises(self):
        with pytest.raises(ValueError):
            Node(0).mbr_tuple()

    def test_children(self):
        leaf1 = Node(0, [Entry.for_object(Rect(0, 0, 1, 1), oid=1)])
        leaf2 = Node(0, [Entry.for_object(Rect(2, 2, 3, 3), oid=2)])
        parent = Node(1, [Entry.for_child(leaf1), Entry.for_child(leaf2)])
        assert parent.children() == [leaf1, leaf2]

    def test_sort_entries_by_xl(self):
        node = Node(
            0,
            [
                Entry.for_object(Rect(5, 0, 6, 1), oid=1),
                Entry.for_object(Rect(0, 0, 1, 1), oid=2),
                Entry.for_object(Rect(3, 0, 4, 1), oid=3),
            ],
        )
        node.sort_entries_by_xl()
        assert [e.oid for e in node.entries] == [2, 3, 1]

    def test_len(self):
        assert len(Node(0, [Entry.for_object(Rect(0, 0, 1, 1), oid=1)])) == 1
