"""Differential parity: the flat packed backend vs the pointer R*-tree.

Window queries and k-NN over seeded uniform, clustered and degenerate
(duplicate / zero-area) datasets must return exactly the node-tree
result sets — and for k-NN the identical ordered ``(distance, oid)``
list — with the brute-force oracle of :mod:`tests.flat_oracle` as the
ground truth for both.
"""

import pytest

from repro.geometry.rect import Rect
from repro.query.batch import multi_window_query
from repro.rtree import FlatRTree, build_flat_tree
from repro.rtree.query import QueryStats, nearest_neighbors, window_query

from tests.flat_oracle import (
    DATASETS,
    assert_knn_parity,
    assert_window_parity,
    brute_window,
    build_both,
    dataset,
    query_windows,
)

KINDS = sorted(DATASETS)


@pytest.fixture(scope="module", params=KINDS)
def workload(request):
    items = dataset(request.param, n=600, seed=11)
    node_tree, flat_tree = build_both(items)
    return items, node_tree, flat_tree


class TestWindowParity:
    def test_window_queries_match(self, workload):
        items, node_tree, flat_tree = workload
        assert_window_parity(items, node_tree, flat_tree, query_windows(3))

    def test_multi_window_matches_single(self, workload):
        items, node_tree, flat_tree = workload
        windows = query_windows(5)
        batched = multi_window_query(flat_tree, windows)
        assert len(batched) == len(windows)
        for window, entries in zip(windows, batched):
            assert {e.oid for e in entries} == brute_window(items, window)

    def test_stats_are_accounted(self, workload):
        _, _, flat_tree = workload
        stats = QueryStats()
        window_query(flat_tree, Rect(-1e9, -1e9, 1e9, 1e9), stats=stats)
        # Every level of the frontier was visited at least once.
        assert stats.leaf_nodes >= 1
        assert stats.total_nodes >= flat_tree.num_levels - 1


class TestKNNParity:
    def test_knn_matches_ordered(self, workload):
        items, node_tree, flat_tree = workload
        points = [(5.0, 5.0), (0.0, 0.0), (50.0, 50.0), (-10.0, 120.0)]
        assert_knn_parity(
            items, node_tree, flat_tree, points, ks=(1, 3, 10, 599)
        )

    def test_k_larger_than_dataset(self, workload):
        items, node_tree, flat_tree = workload
        got_node = nearest_neighbors(node_tree, 1.0, 2.0, k=len(items) + 50)
        got_flat = nearest_neighbors(flat_tree, 1.0, 2.0, k=len(items) + 50)
        assert len(got_node) == len(got_flat) == len(items)
        assert [(d, e.oid) for d, e in got_node] == [
            (d, e.oid) for d, e in got_flat
        ]

    def test_k_must_be_positive(self, workload):
        _, node_tree, flat_tree = workload
        with pytest.raises(ValueError):
            nearest_neighbors(node_tree, 0.0, 0.0, k=0)
        with pytest.raises(ValueError):
            nearest_neighbors(flat_tree, 0.0, 0.0, k=0)


class TestEdgeShapes:
    def test_empty_tree(self):
        tree = FlatRTree.build([])
        tree.validate()
        assert len(tree) == 0
        assert window_query(tree, Rect(0, 0, 1, 1)) == []
        assert nearest_neighbors(tree, 0.0, 0.0, k=5) == []
        assert multi_window_query(tree, [Rect(0, 0, 1, 1)]) == [[]]
        with pytest.raises(ValueError):
            tree.mbr()

    def test_single_item(self):
        tree = FlatRTree.build([("only", Rect(1, 1, 2, 2))])
        tree.validate()
        assert tree.height == 1
        assert [e.oid for e in window_query(tree, Rect(0, 0, 3, 3))] == ["only"]
        assert window_query(tree, Rect(5, 5, 6, 6)) == []
        (found,) = nearest_neighbors(tree, 0.0, 0.0, k=3)
        assert found[1].oid == "only"

    def test_build_rejects_tiny_node_size(self):
        with pytest.raises(ValueError):
            FlatRTree.build([(0, Rect(0, 0, 1, 1))], node_size=1)

    def test_build_is_deterministic(self):
        items = dataset("uniform", n=300, seed=7)
        a = FlatRTree.build(items, node_size=8)
        b = FlatRTree.build(items, node_size=8)
        assert a.oids == b.oids
        assert (a.xmin == b.xmin).all() and (a.ymax == b.ymax).all()
        assert (a.level_offsets == b.level_offsets).all()

    def test_build_flat_tree_from_map(self):
        from repro.datagen import paper_maps

        map1, _ = paper_maps(scale=0.002)
        tree = build_flat_tree(map1)
        tree.validate()
        assert len(tree) == len(map1)
