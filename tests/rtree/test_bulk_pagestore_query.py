"""Tests for STR bulk loading, pagination and the extra query operations."""

import math
import random

import pytest

from repro.geometry import Rect
from repro.rtree import (
    PageStore,
    QueryStats,
    RStarTree,
    nearest_neighbors,
    str_bulk_load,
    tree_stats,
    window_query,
)
from repro.storage import PageKind


def random_items(n, seed=0, extent=100.0, max_size=4.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        out.append((i, Rect(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size))))
    return out


class TestBulkLoad:
    def test_empty(self):
        tree = str_bulk_load([])
        assert len(tree) == 0
        assert tree.height == 1

    def test_single_item(self):
        tree = str_bulk_load([(1, Rect(0, 0, 1, 1))], dir_capacity=8, data_capacity=8)
        assert len(tree) == 1
        assert tree.height == 1
        tree.validate()

    @pytest.mark.parametrize("n", [5, 50, 500, 3000])
    def test_invariants_at_many_sizes(self, n):
        tree = str_bulk_load(
            random_items(n, seed=n), dir_capacity=10, data_capacity=10, fill=0.7
        )
        assert len(tree) == n
        tree.validate()

    def test_bad_fill_rejected(self):
        with pytest.raises(ValueError):
            str_bulk_load([(1, Rect(0, 0, 1, 1))], fill=0.0)

    def test_query_matches_brute_force(self):
        items = random_items(800, seed=11)
        tree = str_bulk_load(items, dir_capacity=12, data_capacity=12)
        window = Rect(20, 20, 60, 60)
        got = sorted(e.oid for e in tree.search(window))
        want = sorted(oid for oid, r in items if r.intersects(window))
        assert got == want

    def test_fill_controls_page_count(self):
        items = random_items(2000, seed=12)
        packed = str_bulk_load(items, dir_capacity=16, data_capacity=16, fill=1.0)
        loose = str_bulk_load(items, dir_capacity=16, data_capacity=16, fill=0.7)
        assert tree_stats(loose).data_pages > tree_stats(packed).data_pages
        # Loose fill should land near entries / (fill * capacity).
        expected = math.ceil(2000 / (0.7 * 16))
        assert abs(tree_stats(loose).data_pages - expected) <= expected * 0.2

    def test_dynamic_insert_after_bulk_load(self):
        items = random_items(300, seed=13)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        for i in range(300, 350):
            tree.insert(i, Rect(i, i, i + 1, i + 1))
        assert len(tree) == 350
        tree.validate()

    def test_bulk_load_much_faster_shape_same_height_class(self):
        # STR and dynamic build of the same data have comparable heights.
        items = random_items(1000, seed=14)
        bulk = str_bulk_load(items, dir_capacity=10, data_capacity=10)
        dynamic = RStarTree(dir_capacity=10, data_capacity=10)
        for oid, rect in items:
            dynamic.insert(oid, rect)
        assert abs(bulk.height - dynamic.height) <= 1


class TestPageStore:
    def make_two_trees(self):
        t1 = str_bulk_load(random_items(200, seed=20), dir_capacity=8, data_capacity=8)
        t2 = str_bulk_load(random_items(150, seed=21), dir_capacity=8, data_capacity=8)
        store = PageStore()
        store.add_tree(0, t1)
        store.add_tree(1, t2)
        return store, t1, t2

    def test_ids_unique_and_dense(self):
        store, t1, t2 = self.make_two_trees()
        pages = list(store.pages())
        assert pages == list(range(store.page_count))
        seen = {store.node(p).page_id for p in pages}
        assert seen == set(pages)

    def test_root_gets_first_page_of_its_tree(self):
        store, t1, t2 = self.make_two_trees()
        assert t1.root.page_id == 0
        assert t2.root.page_id is not None
        assert store.tree_of(t1.root.page_id) == 0
        assert store.tree_of(t2.root.page_id) == 1

    def test_kind_classification(self):
        store, t1, _ = self.make_two_trees()
        for page in store.pages():
            node = store.node(page)
            expected = PageKind.DATA if node.is_leaf else PageKind.DIRECTORY
            assert store.kind(page) is expected

    def test_depth(self):
        store, t1, _ = self.make_two_trees()
        assert store.depth(0, t1.root) == 0
        leaf = next(n for n in t1.nodes() if n.is_leaf)
        assert store.depth(0, leaf) == t1.height - 1

    def test_duplicate_tree_id_rejected(self):
        store, _, _ = self.make_two_trees()
        with pytest.raises(ValueError):
            store.add_tree(0, str_bulk_load([(1, Rect(0, 0, 1, 1))]))

    def test_tree_heights(self):
        store, t1, t2 = self.make_two_trees()
        assert store.tree_heights() == {0: t1.height, 1: t2.height}


class TestWindowQuery:
    def test_matches_tree_search(self):
        items = random_items(400, seed=30)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        window = Rect(10, 10, 50, 50)
        assert sorted(e.oid for e in window_query(tree, window)) == sorted(
            e.oid for e in tree.search(window)
        )

    def test_stats_counted(self):
        items = random_items(400, seed=31)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        stats = QueryStats()
        window_query(tree, Rect(0, 0, 100, 100), stats)
        total = tree_stats(tree)
        assert stats.leaf_nodes == total.data_pages
        assert stats.directory_nodes == total.directory_pages
        assert stats.total_nodes == total.data_pages + total.directory_pages

    def test_small_window_touches_few_nodes(self):
        items = random_items(2000, seed=32)
        tree = str_bulk_load(items, dir_capacity=16, data_capacity=16)
        stats = QueryStats()
        window_query(tree, Rect(50, 50, 52, 52), stats)
        assert stats.total_nodes < tree_stats(tree).data_pages / 4


class TestNearestNeighbors:
    def test_k1_matches_brute_force(self):
        items = random_items(500, seed=40)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        rng = random.Random(41)
        for _ in range(15):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            [(d, entry)] = nearest_neighbors(tree, x, y, k=1)
            want = min(
                Rect(x, y, x, y).min_distance(r) for _, r in items
            )
            assert d == pytest.approx(want)

    def test_k_results_sorted_and_correct(self):
        items = random_items(300, seed=42)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        x, y = 50.0, 50.0
        got = nearest_neighbors(tree, x, y, k=10)
        assert len(got) == 10
        distances = [d for d, _ in got]
        assert distances == sorted(distances)
        probe = Rect(x, y, x, y)
        all_distances = sorted(probe.min_distance(r) for _, r in items)
        assert distances == pytest.approx(all_distances[:10])

    def test_k_larger_than_tree(self):
        items = random_items(5, seed=43)
        tree = str_bulk_load(items, dir_capacity=8, data_capacity=8)
        assert len(nearest_neighbors(tree, 0, 0, k=50)) == 5

    def test_empty_tree(self):
        assert nearest_neighbors(RStarTree(), 0, 0, k=3) == []

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbors(RStarTree(), 0, 0, k=0)
