"""Regression: k-NN ties at exactly equal distance are deterministic.

The original best-first search broke distance ties by heap insertion
order, so the entry filling the last result slot depended on tree shape
and insertion history — two trees over the same data could answer the
same query differently.  Ties now resolve by
:func:`repro.rtree.query.oid_order_key`; these tests pin the ordering on
both backends and across insertion orders.
"""

import random

import pytest

from repro.geometry.rect import Rect
from repro.rtree import RStarTree
from repro.rtree.flat import FlatRTree
from repro.rtree.query import nearest_neighbors, oid_order_key

#: Eight coincident points — every pair ties at every query point — plus
#: four distinct ones at a strictly greater distance.
TIED = [(oid, Rect(5.0, 5.0, 5.0, 5.0)) for oid in range(8)]
FAR = [(10 + i, Rect(20.0 + i, 20.0, 21.0 + i, 21.0)) for i in range(4)]


def node_tree(items):
    tree = RStarTree(dir_capacity=4, data_capacity=4)
    for oid, rect in items:
        tree.insert(oid, rect)
    return tree


class TestTieOrdering:
    def test_tied_entries_come_out_in_oid_order(self):
        tree = node_tree(TIED + FAR)
        for k in (1, 3, 8, 12):
            got = [e.oid for _, e in nearest_neighbors(tree, 5.0, 5.0, k)]
            assert got == list(range(min(k, 8))) + [
                10 + i for i in range(max(0, k - 8))
            ]

    def test_order_is_insertion_order_independent(self):
        rng = random.Random(99)
        shuffled = TIED + FAR
        baseline = None
        for _ in range(5):
            rng.shuffle(shuffled)
            tree = node_tree(shuffled)
            got = [e.oid for _, e in nearest_neighbors(tree, 5.0, 5.0, 6)]
            if baseline is None:
                baseline = got
            assert got == baseline

    def test_flat_backend_matches_node_backend_on_ties(self):
        items = TIED + FAR
        flat = FlatRTree.build(items, node_size=4)
        tree = node_tree(items)
        for k in (1, 5, 8, 12):
            got_node = [
                (d, e.oid) for d, e in nearest_neighbors(tree, 5.0, 5.0, k)
            ]
            got_flat = [
                (d, e.oid) for d, e in nearest_neighbors(flat, 5.0, 5.0, k)
            ]
            assert got_node == got_flat

    def test_mixed_oid_types_order_totally(self):
        items = [
            ("b", Rect(0, 0, 0, 0)),
            ("a", Rect(0, 0, 0, 0)),
            (2, Rect(0, 0, 0, 0)),
            (1, Rect(0, 0, 0, 0)),
            ((3, 4), Rect(0, 0, 0, 0)),
        ]
        tree = node_tree(items)
        flat = FlatRTree.build(items, node_size=4)
        got_node = [e.oid for _, e in nearest_neighbors(tree, 0.0, 0.0, 5)]
        got_flat = [e.oid for _, e in nearest_neighbors(flat, 0.0, 0.0, 5)]
        # Numbers first, then strings, then everything else by repr.
        assert got_node == got_flat == [1, 2, "a", "b", (3, 4)]

    def test_oid_order_key_is_total_on_common_types(self):
        keys = [oid_order_key(o) for o in (0, 1.5, True, "x", None, (1,))]
        keys.sort()  # must not raise (total order across types)
        assert oid_order_key(True) != oid_order_key(1)
