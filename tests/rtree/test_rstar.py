"""Unit tests for R*-tree insertion, splitting, deletion and search."""

import random

import pytest

from repro.geometry import Rect, brute_window_query
from repro.rtree import RStarTree, tree_stats


def random_rects(n, seed=0, extent=100.0, max_size=5.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.uniform(0, extent)
        y = rng.uniform(0, extent)
        out.append((i, Rect(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size))))
    return out


def build(items, **kwargs):
    tree = RStarTree(**kwargs)
    for oid, rect in items:
        tree.insert(oid, rect)
    return tree


class TestConstruction:
    def test_default_capacities_match_paper(self):
        tree = RStarTree()
        assert tree.dir_capacity == 102
        assert tree.data_capacity == 26
        assert tree.min_dir == 40
        assert tree.min_data == 10

    def test_capacity_overrides(self):
        tree = RStarTree(dir_capacity=8, data_capacity=6)
        assert tree.dir_capacity == 8
        assert tree.data_capacity == 6

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(data_capacity=3)

    def test_bad_min_fill_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(min_fill=0.8)

    def test_empty_tree(self):
        tree = RStarTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search(Rect(0, 0, 100, 100)) == []


class TestInsert:
    def test_single_insert(self):
        tree = RStarTree(dir_capacity=4, data_capacity=4)
        tree.insert("a", Rect(0, 0, 1, 1))
        assert len(tree) == 1
        assert tree.height == 1
        [found] = tree.search(Rect(0, 0, 2, 2))
        assert found.oid == "a"
        tree.validate()

    def test_leaf_split_grows_height(self):
        tree = RStarTree(dir_capacity=4, data_capacity=4)
        for i in range(5):
            tree.insert(i, Rect(i, 0, i + 0.5, 1))
        assert tree.height == 2
        tree.validate()

    def test_many_inserts_keep_invariants(self):
        tree = build(random_rects(500, seed=1), dir_capacity=8, data_capacity=8)
        assert len(tree) == 500
        assert tree.height >= 3
        tree.validate()

    def test_duplicate_rects_allowed(self):
        tree = RStarTree(dir_capacity=4, data_capacity=4)
        for i in range(20):
            tree.insert(i, Rect(1, 1, 2, 2))
        assert len(tree) == 20
        tree.validate()
        assert len(tree.search(Rect(0, 0, 3, 3))) == 20

    def test_degenerate_rects(self):
        tree = RStarTree(dir_capacity=4, data_capacity=4)
        for i in range(30):
            tree.insert(i, Rect(i * 0.1, 5, i * 0.1, 5))  # points
        tree.validate()
        assert len(tree.search(Rect(0, 5, 3, 5))) == 30

    def test_clustered_data(self):
        items = random_rects(200, seed=2, extent=5.0)  # heavy overlap
        tree = build(items, dir_capacity=6, data_capacity=6)
        tree.validate()


class TestSearch:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_window_query_matches_brute_force(self, seed):
        items = random_rects(300, seed=seed)
        tree = build(items, dir_capacity=8, data_capacity=8)
        rects = [r for _, r in items]
        rng = random.Random(seed + 100)
        for _ in range(20):
            x = rng.uniform(0, 90)
            y = rng.uniform(0, 90)
            window = Rect(x, y, x + rng.uniform(1, 30), y + rng.uniform(1, 30))
            got = sorted(e.oid for e in tree.search(window))
            want = sorted(
                i for i, (oid, r) in enumerate(items) if r.intersects(window)
            )
            assert got == want

    def test_search_empty_window_region(self):
        tree = build(random_rects(100, seed=3), dir_capacity=8, data_capacity=8)
        assert tree.search(Rect(1000, 1000, 1001, 1001)) == []

    def test_mbr_covers_everything(self):
        items = random_rects(100, seed=4)
        tree = build(items, dir_capacity=8, data_capacity=8)
        mbr = tree.mbr()
        for _, r in items:
            assert mbr.contains(r)


class TestDelete:
    def test_delete_existing(self):
        items = random_rects(50, seed=5)
        tree = build(items, dir_capacity=6, data_capacity=6)
        oid, rect = items[25]
        assert tree.delete(oid, rect)
        assert len(tree) == 49
        assert all(e.oid != oid for e in tree.search(rect))
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = build(random_rects(20, seed=6), dir_capacity=6, data_capacity=6)
        assert not tree.delete(999, Rect(0, 0, 1, 1))
        assert len(tree) == 20

    def test_delete_all(self):
        items = random_rects(80, seed=7)
        tree = build(items, dir_capacity=6, data_capacity=6)
        for oid, rect in items:
            assert tree.delete(oid, rect)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search(Rect(-1000, -1000, 1000, 1000)) == []

    def test_delete_half_keeps_invariants_and_results(self):
        items = random_rects(200, seed=8)
        tree = build(items, dir_capacity=7, data_capacity=7)
        for oid, rect in items[::2]:
            assert tree.delete(oid, rect)
        tree.validate()
        survivors = {oid for oid, _ in items[1::2]}
        found = {e.oid for e in tree.search(Rect(-1e6, -1e6, 1e6, 1e6))}
        assert found == survivors

    def test_interleaved_insert_delete(self):
        tree = RStarTree(dir_capacity=5, data_capacity=5)
        rng = random.Random(9)
        live = {}
        next_oid = 0
        for step in range(600):
            if live and rng.random() < 0.4:
                oid = rng.choice(list(live))
                assert tree.delete(oid, live.pop(oid))
            else:
                x, y = rng.uniform(0, 50), rng.uniform(0, 50)
                rect = Rect(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3))
                tree.insert(next_oid, rect)
                live[next_oid] = rect
                next_oid += 1
        tree.validate()
        assert len(tree) == len(live)


class TestTreeStats:
    def test_counts(self):
        items = random_rects(300, seed=10)
        tree = build(items, dir_capacity=8, data_capacity=8)
        stats = tree_stats(tree)
        assert stats.data_entries == 300
        assert stats.height == tree.height
        assert stats.nodes_per_level[tree.root.level] == 1
        assert stats.data_pages == stats.nodes_per_level[0]
        assert stats.directory_pages == sum(
            count for level, count in stats.nodes_per_level.items() if level > 0
        )
        assert 0.4 <= stats.avg_leaf_fill <= 1.0

    def test_single_leaf_tree(self):
        tree = RStarTree(dir_capacity=8, data_capacity=8)
        tree.insert(1, Rect(0, 0, 1, 1))
        stats = tree_stats(tree)
        assert stats.data_pages == 1
        assert stats.directory_pages == 0

    def test_table1_row_keys(self):
        tree = RStarTree(dir_capacity=8, data_capacity=8)
        tree.insert(1, Rect(0, 0, 1, 1))
        row = tree_stats(tree).as_table1_row()
        assert set(row) == {
            "height",
            "number of data entries",
            "number of data pages",
            "number of directory pages",
        }
