"""Tests for the Guttman R-tree baseline [Gut 84]."""

import random

import pytest

from repro.geometry import Rect
from repro.rtree import RStarTree
from repro.rtree.guttman import GuttmanRTree


def random_items(n, seed=0, extent=100.0, max_size=5.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append((i, Rect(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size))))
    return out


def build(items, **kwargs):
    tree = GuttmanRTree(**kwargs)
    for oid, rect in items:
        tree.insert(oid, rect)
    return tree


class TestConstruction:
    def test_default_capacities(self):
        tree = GuttmanRTree()
        assert tree.dir_capacity == 102
        assert tree.data_capacity == 26

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            GuttmanRTree(split="cubic")

    def test_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            GuttmanRTree(data_capacity=2)

    def test_bad_min_fill_rejected(self):
        with pytest.raises(ValueError):
            GuttmanRTree(min_fill=0.9)


@pytest.mark.parametrize("split", ["quadratic", "linear"])
class TestInsertAndSearch:
    def test_invariants_after_many_inserts(self, split):
        tree = build(random_items(400, seed=1), dir_capacity=8, data_capacity=8, split=split)
        assert len(tree) == 400
        assert tree.height >= 3
        tree.validate()

    def test_window_query_matches_brute_force(self, split):
        items = random_items(300, seed=2)
        tree = build(items, dir_capacity=8, data_capacity=8, split=split)
        rng = random.Random(3)
        for _ in range(15):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            window = Rect(x, y, x + rng.uniform(1, 25), y + rng.uniform(1, 25))
            got = sorted(e.oid for e in tree.search(window))
            want = sorted(i for i, r in items if r.intersects(window))
            assert got == want

    def test_duplicates_and_degenerates(self, split):
        tree = GuttmanRTree(dir_capacity=5, data_capacity=5, split=split)
        for i in range(40):
            tree.insert(i, Rect(1, 1, 1, 1))
        tree.validate()
        assert len(tree.search(Rect(0, 0, 2, 2))) == 40

    def test_mbr_covers_everything(self, split):
        items = random_items(120, seed=4)
        tree = build(items, dir_capacity=6, data_capacity=6, split=split)
        mbr = tree.mbr()
        for _, rect in items:
            assert mbr.contains(rect)


class TestBaselineVsRStar:
    def test_same_query_answers(self):
        items = random_items(500, seed=5)
        guttman = build(items, dir_capacity=8, data_capacity=8)
        rstar = RStarTree(dir_capacity=8, data_capacity=8)
        for oid, rect in items:
            rstar.insert(oid, rect)
        window = Rect(20, 20, 70, 70)
        assert sorted(e.oid for e in guttman.search(window)) == sorted(
            e.oid for e in rstar.search(window)
        )

    def test_rstar_directory_overlaps_less(self):
        # The R*-tree's raison d'être for joins: less directory overlap on
        # clustered data => fewer node pairs qualify.  Compare the total
        # pairwise overlap area of the level-1 directory entries.
        items = random_items(800, seed=6, extent=30.0)  # clustered
        guttman = build(items, dir_capacity=8, data_capacity=8)
        rstar = RStarTree(dir_capacity=8, data_capacity=8)
        for oid, rect in items:
            rstar.insert(oid, rect)

        def leaf_overlap(tree):
            leaves = [n for n in tree.nodes() if n.is_leaf]
            rects = [Rect(*n.mbr_tuple()) for n in leaves]
            total = 0.0
            for i in range(len(rects)):
                for j in range(i + 1, len(rects)):
                    total += rects[i].intersection_area(rects[j])
            return total / max(1, len(rects))

        assert leaf_overlap(rstar) <= leaf_overlap(guttman)

    def test_join_works_on_guttman_trees(self):
        # The sequential join is tree-agnostic: it only needs nodes/entries.
        from repro.join import sequential_join

        items_r = random_items(200, seed=7)
        items_s = random_items(200, seed=8)
        guttman_r = build(items_r, dir_capacity=8, data_capacity=8)
        guttman_s = build(items_s, dir_capacity=8, data_capacity=8)
        got = sequential_join(guttman_r, guttman_s).pair_set()
        want = {
            (i, j)
            for i, r in items_r
            for j, s in items_s
            if r.intersects(s)
        }
        assert got == want
