"""Shared differential oracle for the flat packed backend.

One module answers every "do the backends agree?" question: it builds
seeded datasets (uniform, clustered, degenerate), constructs both the
pointer R*-tree and the packed :class:`~repro.rtree.flat.FlatRTree` over
the *same* items, computes ground truth by brute force, and asserts that
window queries, k-NN and joins return identical result sets — and for
k-NN the identical ordered ``(distance, oid)`` list — on both backends.

The pytest parity suites (``tests/rtree/test_flat_parity.py``,
``tests/join/test_flat_join_parity.py``) and the hypothesis property
suite (``tests/property/test_flat_properties.py``) all drive their
checks through these helpers, so backend-parity has exactly one
definition in the tree.
"""

from __future__ import annotations

import random

from repro.geometry.rect import Rect
from repro.rtree import str_bulk_load
from repro.rtree.flat import FlatRTree
from repro.rtree.query import (
    QueryStats,
    nearest_neighbors,
    oid_order_key,
    window_query,
)

# -- seeded datasets ---------------------------------------------------------


def uniform_items(n, seed, side=100.0, max_extent=2.0):
    """Uniformly placed boxes of random (possibly zero) extent."""
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        x, y = rng.uniform(0, side), rng.uniform(0, side)
        w, h = rng.uniform(0, max_extent), rng.uniform(0, max_extent)
        items.append((oid, Rect(x, y, x + w, y + h)))
    return items


def clustered_items(n, seed, clusters=8, side=100.0, spread=3.0):
    """Boxes packed into a few dense clusters (skewed node occupancy)."""
    rng = random.Random(seed)
    centers = [
        (rng.uniform(0, side), rng.uniform(0, side)) for _ in range(clusters)
    ]
    items = []
    for oid in range(n):
        cx, cy = centers[oid % clusters]
        x, y = rng.gauss(cx, spread), rng.gauss(cy, spread)
        w, h = rng.uniform(0, 1.0), rng.uniform(0, 1.0)
        items.append((oid, Rect(x, y, x + w, y + h)))
    return items


def degenerate_items(n, seed, side=20.0):
    """Duplicates and zero-area boxes: every tie-breaking path fires."""
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        kind = oid % 3
        if kind == 0:  # exact duplicates of one box
            items.append((oid, Rect(5.0, 5.0, 6.0, 6.0)))
        elif kind == 1:  # zero-area points, many coincident
            x = float(rng.randrange(4))
            items.append((oid, Rect(x, x, x, x)))
        else:  # random but on a coarse grid: frequent shared coordinates
            x, y = float(rng.randrange(int(side))), float(rng.randrange(int(side)))
            items.append((oid, Rect(x, y, x + 1.0, y + 1.0)))
    return items


DATASETS = {
    "uniform": uniform_items,
    "clustered": clustered_items,
    "degenerate": degenerate_items,
}


def dataset(kind, n, seed):
    return DATASETS[kind](n, seed)


def query_windows(seed, side=100.0, count=8):
    """A seeded mix of query windows, including the degenerate ones."""
    rng = random.Random(seed)
    windows = [
        Rect(-1e9, -1e9, 1e9, 1e9),  # everything
        Rect(side * 2, side * 2, side * 3, side * 3),  # nothing
        Rect(5.0, 5.0, 5.0, 5.0),  # point window on a popular spot
    ]
    for _ in range(count):
        x, y = rng.uniform(0, side), rng.uniform(0, side)
        w, h = rng.uniform(0, side / 3), rng.uniform(0, side / 3)
        windows.append(Rect(x, y, x + w, y + h))
    return windows


# -- builders ----------------------------------------------------------------


def build_node(items, cap=16):
    """The pointer backend (STR-packed; small capacity = real depth)."""
    return str_bulk_load(list(items), dir_capacity=cap, data_capacity=cap)


def build_flat(items, node_size=8):
    """The packed backend (small node_size = real depth)."""
    return FlatRTree.build(items, node_size=node_size)


def build_both(items, *, cap=16, node_size=8):
    return build_node(items, cap=cap), build_flat(items, node_size=node_size)


# -- brute-force ground truth ------------------------------------------------


def brute_window(items, window):
    return {oid for oid, rect in items if rect.intersects(window)}


def mindist(rect, x, y):
    dx = max(rect.xl - x, x - rect.xu, 0.0)
    dy = max(rect.yl - y, y - rect.yu, 0.0)
    return (dx * dx + dy * dy) ** 0.5


def brute_knn(items, x, y, k):
    """The exact ordered ``(distance, oid)`` answer, ties by oid key."""
    ranked = sorted(
        ((mindist(rect, x, y), oid) for oid, rect in items),
        key=lambda pair: (pair[0], oid_order_key(pair[1])),
    )
    return ranked[:k]


def brute_join(items_r, items_s):
    return {
        (oid_r, oid_s)
        for oid_r, rect_r in items_r
        for oid_s, rect_s in items_s
        if rect_r.intersects(rect_s)
    }


# -- parity assertions -------------------------------------------------------


def assert_window_parity(items, node_tree, flat_tree, windows):
    """Both backends return the brute-force entry set for every window."""
    for window in windows:
        expected = brute_window(items, window)
        got_node = {e.oid for e in window_query(node_tree, window)}
        stats = QueryStats()
        got_flat = {e.oid for e in window_query(flat_tree, window, stats=stats)}
        assert got_node == expected, f"node backend wrong for {window}"
        assert got_flat == expected, f"flat backend wrong for {window}"
        if expected:
            assert stats.total_nodes > 0, "flat stats not accounted"


def assert_knn_parity(items, node_tree, flat_tree, points, ks):
    """Both backends return the identical ordered (distance, oid) list."""
    for x, y in points:
        for k in ks:
            expected = brute_knn(items, x, y, k)
            got_node = [
                (d, e.oid) for d, e in nearest_neighbors(node_tree, x, y, k)
            ]
            got_flat = [
                (d, e.oid) for d, e in nearest_neighbors(flat_tree, x, y, k)
            ]
            assert got_node == got_flat, f"backends disagree at ({x},{y}) k={k}"
            assert [oid for _, oid in got_node] == [
                oid for _, oid in expected
            ], f"order differs from brute force at ({x},{y}) k={k}"
            for (gd, _), (ed, _) in zip(got_node, expected):
                assert abs(gd - ed) < 1e-9


def assert_join_parity(items_r, items_s, pairs):
    """A join result equals the brute-force pair set, exactly once each."""
    pairs = list(pairs)
    expected = brute_join(items_r, items_s)
    assert set(pairs) == expected
    assert len(pairs) == len(expected), "duplicate pairs emitted"
