"""Unit tests for polylines and polygons (exact refinement geometry)."""

import pytest

from repro.geometry import Polygon, Polyline, Rect


class TestPolyline:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Polyline([(0, 0)])

    def test_mbr(self):
        line = Polyline([(0, 0), (2, 3), (1, -1)])
        assert line.mbr == Rect(0, -1, 2, 3)

    def test_segments_count(self):
        line = Polyline([(0, 0), (1, 0), (2, 1)])
        assert line.num_segments() == 2
        assert len(list(line.segments())) == 2

    def test_length(self):
        line = Polyline([(0, 0), (3, 4), (3, 5)])
        assert line.length() == pytest.approx(6.0)

    def test_len(self):
        assert len(Polyline([(0, 0), (1, 1)])) == 2

    def test_intersects_crossing(self):
        a = Polyline([(0, 0), (2, 2)])
        b = Polyline([(0, 2), (2, 0)])
        assert a.intersects(b)

    def test_intersects_disjoint(self):
        a = Polyline([(0, 0), (1, 0)])
        b = Polyline([(0, 1), (1, 1)])
        assert not a.intersects(b)

    def test_intersects_mbr_overlap_but_no_crossing(self):
        a = Polyline([(0, 0), (10, 10)])
        b = Polyline([(0, 1), (4, 9)])
        assert a.mbr.intersects(b.mbr)
        assert not a.intersects(b)

    def test_intersects_multisegment(self):
        a = Polyline([(0, 0), (1, 2), (2, 0), (3, 2)])
        b = Polyline([(0, 1), (3, 1)])
        assert a.intersects(b)

    def test_sweep_matches_brute(self):
        zig = Polyline([(0, 0), (1, 1), (2, 0), (3, 1), (4, 0)])
        others = [
            Polyline([(0, 0.5), (4, 0.5)]),
            Polyline([(0, 2), (4, 2)]),
            Polyline([(1.5, -1), (1.5, 2)]),
            Polyline([(-1, -1), (-0.5, -0.5)]),
        ]
        for other in others:
            assert zig.intersects(other) == zig.intersects_brute(other)


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_closed_ring_input_accepted(self):
        p = Polygon([(0, 0), (1, 0), (0, 1), (0, 0)])
        assert len(p.points) == 3

    def test_closed_degenerate_ring_rejected(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 0), (0, 0)])

    def test_area_unit_square(self):
        sq = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert sq.area() == pytest.approx(1.0)

    def test_area_orientation_independent(self):
        ccw = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert ccw.area() == pytest.approx(cw.area())

    def test_contains_point_inside(self):
        sq = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert sq.contains_point(1, 1)

    def test_contains_point_outside(self):
        sq = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert not sq.contains_point(3, 1)

    def test_contains_point_on_boundary(self):
        sq = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert sq.contains_point(2, 1)
        assert sq.contains_point(0, 0)

    def test_contains_point_concave(self):
        # L-shaped polygon: the notch is outside.
        ell = Polygon([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)])
        assert ell.contains_point(0.5, 1.5)
        assert not ell.contains_point(1.5, 1.5)

    def test_polygon_intersection_overlap(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(1, 1), (3, 1), (3, 3), (1, 3)])
        assert a.intersects_polygon(b)

    def test_polygon_intersection_containment(self):
        outer = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        inner = Polygon([(4, 4), (5, 4), (5, 5), (4, 5)])
        assert outer.intersects_polygon(inner)
        assert inner.intersects_polygon(outer)

    def test_polygon_intersection_disjoint(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(5, 5), (6, 5), (6, 6), (5, 6)])
        assert not a.intersects_polygon(b)

    def test_polyline_crossing_polygon(self):
        sq = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        line = Polyline([(-1, 1), (3, 1)])
        assert sq.intersects_polyline(line)

    def test_polyline_inside_polygon(self):
        sq = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        line = Polyline([(1, 1), (2, 2)])
        assert sq.intersects_polyline(line)

    def test_polyline_outside_polygon(self):
        sq = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        line = Polyline([(2, 2), (3, 3)])
        assert not sq.intersects_polyline(line)
