"""Unit and property tests for the node-level plane sweep (section 2.2)."""

import random

import pytest

from repro.geometry import (
    Rect,
    brute_join_pairs,
    restrict_to_window,
    sweep_pairs,
    x_sorted,
)


def rects(*tuples):
    return [Rect(*t) for t in tuples]


class TestSweepBasics:
    def test_empty_inputs(self):
        assert list(sweep_pairs([], [])) == []
        assert list(sweep_pairs(rects((0, 0, 1, 1)), [])) == []
        assert list(sweep_pairs([], rects((0, 0, 1, 1)))) == []

    def test_single_intersecting_pair(self):
        rs = rects((0, 0, 2, 2))
        ss = rects((1, 1, 3, 3))
        res = sweep_pairs(rs, ss)
        assert res.pairs == [(rs[0], ss[0])]
        assert res.tests >= 1

    def test_single_disjoint_pair(self):
        rs = rects((0, 0, 1, 1))
        ss = rects((5, 5, 6, 6))
        assert sweep_pairs(rs, ss).pairs == []

    def test_pair_orientation_preserved(self):
        # Output pairs are always (element of rs, element of ss) even when
        # the sweep line stops at an s-rectangle first.
        rs = rects((1, 0, 3, 2))
        ss = rects((0, 0, 2, 2))
        (pair,) = sweep_pairs(rs, ss).pairs
        assert pair == (rs[0], ss[0])

    def test_x_overlap_but_y_disjoint(self):
        rs = rects((0, 0, 2, 1))
        ss = rects((1, 5, 3, 6))
        assert sweep_pairs(rs, ss).pairs == []

    def test_len_and_iter(self):
        rs = rects((0, 0, 2, 2), (4, 0, 6, 2))
        ss = rects((1, 1, 5, 1.5))
        res = sweep_pairs(rs, ss)
        assert len(res) == 2
        assert set(res) == {(rs[0], ss[0]), (rs[1], ss[0])}


class TestPaperFigure1:
    """The worked example of Figure 1 (three r's, two s's)."""

    def setup_method(self):
        # Reconstructed so that the sweep stops at r1, s1, r2, s2, r3 and
        # produces the test pairs listed in the figure:
        #   r1: (r1, s1); s1: (s1, r2); r2: (r2, s2); s2: (s2, r3); r3: -
        self.r1 = Rect(0.0, 2.0, 2.0, 4.0)
        self.s1 = Rect(1.0, 1.0, 4.0, 3.0)
        self.r2 = Rect(2.5, 2.5, 5.0, 5.0)
        self.s2 = Rect(4.5, 0.0, 7.0, 3.0)
        self.r3 = Rect(5.5, 2.0, 8.0, 4.0)

    def test_order_is_local_plane_sweep_order(self):
        res = sweep_pairs(
            x_sorted([self.r1, self.r2, self.r3]),
            x_sorted([self.s1, self.s2]),
        )
        assert res.pairs == [
            (self.r1, self.s1),
            (self.r2, self.s1),
            (self.r2, self.s2),
            (self.r3, self.s2),
        ]


class TestSweepAgainstBrute:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clusters_match_brute(self, seed):
        rng = random.Random(seed)

        def make(n):
            out = []
            for _ in range(n):
                x = rng.uniform(0, 100)
                y = rng.uniform(0, 100)
                out.append(Rect(x, y, x + rng.uniform(0, 10), y + rng.uniform(0, 10)))
            return out

        rs = x_sorted(make(60))
        ss = x_sorted(make(60))
        got = set(sweep_pairs(rs, ss).pairs)
        want = set(brute_join_pairs(rs, ss))
        assert got == want

    def test_duplicated_coordinates(self):
        # Ties in xl must not lose pairs.
        rs = x_sorted(rects((0, 0, 1, 1), (0, 2, 1, 3), (0, 0, 3, 3)))
        ss = x_sorted(rects((0, 0, 1, 1), (0, 1.5, 2, 2.5)))
        got = set(sweep_pairs(rs, ss).pairs)
        want = set(brute_join_pairs(rs, ss))
        assert got == want

    def test_all_identical_rects(self):
        rs = rects(*[(0, 0, 1, 1)] * 5)
        ss = rects(*[(0, 0, 1, 1)] * 4)
        assert len(sweep_pairs(rs, ss)) == 20


class TestSweepCost:
    def test_tests_counts_y_comparisons(self):
        # Two r's far apart in x, one s overlapping only the first: the
        # second r must never be tested.
        rs = x_sorted(rects((0, 0, 1, 1), (100, 0, 101, 1)))
        ss = x_sorted(rects((0.5, 0, 1.5, 1)))
        res = sweep_pairs(rs, ss)
        # r1 stops first and scans s1 (1 test); s1 then stops but r2's xl
        # is beyond s1.xu, so r2 is never tested.
        assert res.tests == 1
        assert len(res) == 1

    def test_sweep_cheaper_than_brute_on_spread_data(self):
        rng = random.Random(42)
        rs = x_sorted(
            [Rect(i * 10.0, 0, i * 10.0 + 1, 1) for i in range(200)]
        )
        ss = x_sorted(
            [Rect(i * 10.0 + rng.random(), 0, i * 10.0 + 1.5, 1) for i in range(200)]
        )
        res = sweep_pairs(rs, ss)
        assert res.tests < 200 * 200 / 10  # far below quadratic


class TestRestrictToWindow:
    def test_filters_non_intersecting(self):
        items = rects((0, 0, 1, 1), (5, 5, 6, 6), (0.5, 0.5, 2, 2))
        window = Rect(0, 0, 1.2, 1.2)
        got = restrict_to_window(items, window)
        assert got == [items[0], items[2]]

    def test_preserves_order(self):
        items = x_sorted(rects((0, 0, 1, 1), (0.2, 0, 1, 1), (0.4, 0, 1, 1)))
        got = restrict_to_window(items, Rect(0, 0, 10, 10))
        assert got == items

    def test_restriction_does_not_change_join_result(self):
        rng = random.Random(7)
        rs = [
            Rect(x, y, x + rng.uniform(0, 5), y + rng.uniform(0, 5))
            for x, y in [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(80)]
        ]
        ss = [
            Rect(x, y, x + rng.uniform(0, 5), y + rng.uniform(0, 5))
            for x, y in [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(80)]
        ]
        mbr_r = Rect.union_all(rs)
        mbr_s = Rect.union_all(ss)
        window = mbr_r.intersection(mbr_s)
        assert window is not None
        full = set(brute_join_pairs(rs, ss))
        restricted = set(
            brute_join_pairs(
                restrict_to_window(rs, window), restrict_to_window(ss, window)
            )
        )
        assert restricted == full
