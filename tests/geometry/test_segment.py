"""Unit tests for exact segment intersection."""

import pytest

from repro.geometry import Rect, Segment
from repro.geometry.segment import on_segment, orientation


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(0, 0, 1, 0, 0, 1) == 1

    def test_clockwise(self):
        assert orientation(0, 0, 0, 1, 1, 0) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0

    def test_on_segment(self):
        assert on_segment(0, 0, 2, 2, 1, 1)
        assert not on_segment(0, 0, 2, 2, 3, 3)


class TestSegmentBasics:
    def test_mbr(self):
        s = Segment(3, 1, 0, 4)
        assert s.mbr() == Rect(0, 1, 3, 4)

    def test_length(self):
        assert Segment(0, 0, 3, 4).length() == pytest.approx(5.0)

    def test_from_points(self):
        s = Segment.from_points((1, 2), (3, 4))
        assert (s.ax, s.ay, s.bx, s.by) == (1, 2, 3, 4)

    def test_eq_hash(self):
        assert Segment(0, 0, 1, 1) == Segment(0, 0, 1, 1)
        assert hash(Segment(0, 0, 1, 1)) == hash(Segment(0, 0, 1, 1))
        assert Segment(0, 0, 1, 1) != Segment(0, 0, 1, 2)
        assert Segment(0, 0, 1, 1) != "seg"


class TestSegmentIntersection:
    def test_crossing(self):
        assert Segment(0, 0, 2, 2).intersects(Segment(0, 2, 2, 0))

    def test_disjoint_parallel(self):
        assert not Segment(0, 0, 1, 0).intersects(Segment(0, 1, 1, 1))

    def test_disjoint_far(self):
        assert not Segment(0, 0, 1, 1).intersects(Segment(5, 5, 6, 6))

    def test_touching_at_endpoint(self):
        assert Segment(0, 0, 1, 1).intersects(Segment(1, 1, 2, 0))

    def test_t_junction(self):
        # Endpoint of one lies in the interior of the other.
        assert Segment(0, 0, 2, 0).intersects(Segment(1, -1, 1, 0))

    def test_collinear_overlapping(self):
        assert Segment(0, 0, 2, 0).intersects(Segment(1, 0, 3, 0))

    def test_collinear_touching(self):
        assert Segment(0, 0, 1, 0).intersects(Segment(1, 0, 2, 0))

    def test_collinear_disjoint(self):
        assert not Segment(0, 0, 1, 0).intersects(Segment(2, 0, 3, 0))

    def test_almost_crossing(self):
        # Bounding boxes overlap but segments pass by each other.
        assert not Segment(0, 0, 2, 2).intersects(Segment(0, 0.5, 0.4, 2))

    def test_symmetry(self):
        a = Segment(0, 0, 2, 2)
        b = Segment(0, 2, 2, 0)
        assert a.intersects(b) == b.intersects(a)

    def test_degenerate_point_segment_on_line(self):
        point = Segment(1, 1, 1, 1)
        assert Segment(0, 0, 2, 2).intersects(point)

    def test_degenerate_point_segment_off_line(self):
        point = Segment(1, 2, 1, 2)
        assert not Segment(0, 0, 2, 2).intersects(point)
