"""Unit tests for the Rect MBR algebra."""

import math

import pytest

from repro.geometry import Rect


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(1, 2, 3, 4)
        assert (r.xl, r.yl, r.xu, r.yu) == (1.0, 2.0, 3.0, 4.0)

    def test_degenerate_point_allowed(self):
        r = Rect(1, 1, 1, 1)
        assert r.area() == 0.0

    def test_degenerate_segment_allowed(self):
        r = Rect(0, 1, 5, 1)
        assert r.area() == 0.0
        assert r.margin() == 5.0

    def test_malformed_x_raises(self):
        with pytest.raises(ValueError):
            Rect(2, 0, 1, 1)

    def test_malformed_y_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 2, 1, 1)

    def test_immutable(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            r.xl = 5

    def test_from_points(self):
        r = Rect.from_points([(3, 1), (0, 4), (2, 2)])
        assert r == Rect(0, 1, 3, 4)

    def test_from_points_single(self):
        assert Rect.from_points([(1, 2)]) == Rect(1, 2, 1, 2)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_all(self):
        r = Rect.union_all([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert r == Rect(0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_all([])


class TestMeasures:
    def test_area(self):
        assert Rect(0, 0, 2, 3).area() == 6.0

    def test_margin(self):
        assert Rect(0, 0, 2, 3).margin() == 5.0

    def test_center(self):
        assert Rect(0, 0, 2, 4).center() == (1.0, 2.0)

    def test_width_height(self):
        r = Rect(1, 2, 4, 7)
        assert r.width() == 3.0
        assert r.height() == 5.0


class TestPredicates:
    def test_intersects_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersects_touching_corner(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint_x(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_disjoint_y(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 1.01, 1, 2))

    def test_intersects_containment(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(4, 4, 5, 5)
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_contains(self):
        assert Rect(0, 0, 10, 10).contains(Rect(1, 1, 2, 2))
        assert not Rect(1, 1, 2, 2).contains(Rect(0, 0, 10, 10))

    def test_contains_self(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(r)

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0, 0)  # boundary
        assert not r.contains_point(1.1, 0.5)


class TestCombination:
    def test_intersection(self):
        got = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert got == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_touching_is_degenerate(self):
        got = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert got == Rect(1, 0, 1, 1)
        assert got.area() == 0.0

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlargement_zero_when_contained(self):
        assert Rect(0, 0, 10, 10).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_enlargement_positive(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(2, 0, 3, 1)) == pytest.approx(2.0)

    def test_min_distance_disjoint(self):
        assert Rect(0, 0, 1, 1).min_distance(Rect(4, 4, 5, 5)) == pytest.approx(
            math.hypot(3, 3)
        )

    def test_min_distance_overlapping_is_zero(self):
        assert Rect(0, 0, 2, 2).min_distance(Rect(1, 1, 3, 3)) == 0.0


class TestOverlapDegree:
    def test_disjoint_is_zero(self):
        assert Rect(0, 0, 1, 1).overlap_degree(Rect(5, 5, 6, 6)) == 0.0

    def test_identical_is_one(self):
        r = Rect(0, 0, 2, 3)
        assert r.overlap_degree(r) == pytest.approx(1.0)

    def test_partial_between_zero_and_one(self):
        d = Rect(0, 0, 2, 2).overlap_degree(Rect(1, 1, 3, 3))
        assert 0.0 < d < 1.0
        # Half of the smaller extent covered on each axis.
        assert d == pytest.approx(0.25)

    def test_symmetry(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 0.5, 4, 5)
        assert a.overlap_degree(b) == pytest.approx(b.overlap_degree(a))

    def test_degenerate_segments_overlapping(self):
        a = Rect(0, 1, 4, 1)
        b = Rect(2, 1, 6, 1)
        d = a.overlap_degree(b)
        assert 0.0 < d < 1.0

    def test_degenerate_identical_points(self):
        p = Rect(1, 1, 1, 1)
        assert p.overlap_degree(p) == 1.0

    def test_degenerate_disjoint_points(self):
        assert Rect(0, 0, 0, 0).overlap_degree(Rect(1, 1, 1, 1)) == 0.0

    def test_segment_against_area_rect(self):
        seg = Rect(0, 1, 4, 1)
        box = Rect(1, 0, 2, 2)
        d = seg.overlap_degree(box)
        assert 0.0 < d <= 1.0


class TestDunder:
    def test_eq_and_hash(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect(0, 0, 1, 2)

    def test_eq_other_type(self):
        assert Rect(0, 0, 1, 1) != "rect"

    def test_iter_and_tuple(self):
        r = Rect(1, 2, 3, 4)
        assert tuple(r) == (1, 2, 3, 4)
        assert r.as_tuple() == (1, 2, 3, 4)

    def test_repr_roundtrip(self):
        r = Rect(0.5, 1, 2, 3)
        assert eval(repr(r)) == r
