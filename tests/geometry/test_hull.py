"""Unit tests for convex hulls and the separating-axis intersection test."""

import pytest

from repro.geometry.hull import ConvexPolygon, convex_hull


class TestConvexHull:
    def test_square_with_interior_points(self):
        points = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1), (0.5, 1.5)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (2, 0), (2, 2), (0, 2)}

    def test_ccw_order(self):
        hull = convex_hull([(0, 0), (2, 0), (2, 2), (0, 2)])
        area2 = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        )
        assert area2 > 0  # counter-clockwise

    def test_collinear_points_dropped(self):
        hull = convex_hull([(0, 0), (1, 0), (2, 0), (2, 2), (0, 2)])
        assert (1, 0) not in hull

    def test_all_collinear(self):
        assert convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)]) == [(0, 0), (3, 3)]

    def test_single_point(self):
        assert convex_hull([(1, 2), (1, 2)]) == [(1, 2)]

    def test_two_points(self):
        assert convex_hull([(0, 0), (1, 1)]) == [(0, 0), (1, 1)]


class TestConvexPolygon:
    def test_of_builds_hull(self):
        polygon = ConvexPolygon.of([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        assert len(polygon.points) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon([])

    def test_contains_point(self):
        square = ConvexPolygon.of([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.contains_point(1, 1)
        assert square.contains_point(0, 0)  # vertex
        assert square.contains_point(2, 1)  # edge
        assert not square.contains_point(3, 1)

    def test_contains_point_degenerate(self):
        segment = ConvexPolygon([(0, 0), (2, 2)])
        assert segment.contains_point(1, 1)
        assert not segment.contains_point(1, 0)
        point = ConvexPolygon([(1, 1)])
        assert point.contains_point(1, 1)
        assert not point.contains_point(0, 0)


class TestSeparatingAxis:
    def square(self, x, y, size=2):
        return ConvexPolygon.of([(x, y), (x + size, y), (x + size, y + size), (x, y + size)])

    def test_overlapping_squares(self):
        assert self.square(0, 0).intersects(self.square(1, 1))

    def test_touching_squares(self):
        assert self.square(0, 0).intersects(self.square(2, 0))

    def test_disjoint_squares(self):
        assert not self.square(0, 0).intersects(self.square(5, 0))

    def test_diagonal_separation_where_mbrs_overlap(self):
        # Two triangles whose MBRs overlap but that a diagonal axis separates.
        a = ConvexPolygon.of([(0, 0), (2, 0), (0, 2)])
        b = ConvexPolygon.of([(2.2, 2.2), (4, 2.4), (2.4, 4)])
        assert a.mbr.intersects(b.mbr) is False or True  # MBRs may touch
        assert not a.intersects(b)

    def test_containment(self):
        outer = self.square(0, 0, size=10)
        inner = self.square(4, 4, size=1)
        assert outer.intersects(inner)
        assert inner.intersects(outer)

    def test_symmetry(self):
        a = ConvexPolygon.of([(0, 0), (3, 1), (1, 3)])
        b = ConvexPolygon.of([(2, 2), (5, 2), (2, 5)])
        assert a.intersects(b) == b.intersects(a)

    def test_segment_vs_polygon(self):
        square = self.square(0, 0)
        crossing = ConvexPolygon([(-1, 1), (3, 1)])
        missing = ConvexPolygon([(-1, 5), (3, 5)])
        assert square.intersects(crossing)
        assert not square.intersects(missing)

    def test_collinear_segments(self):
        a = ConvexPolygon([(0, 0), (2, 0)])
        overlapping = ConvexPolygon([(1, 0), (3, 0)])
        disjoint = ConvexPolygon([(3, 0), (5, 0)])
        assert a.intersects(overlapping)
        assert a.intersects(ConvexPolygon([(2, 0), (4, 0)]))  # touching
        assert not a.intersects(disjoint)

    def test_point_cases(self):
        square = self.square(0, 0)
        inside = ConvexPolygon([(1, 1)])
        outside = ConvexPolygon([(5, 5)])
        assert square.intersects(inside)
        assert not square.intersects(outside)
        assert inside.intersects(ConvexPolygon([(1, 1)]))
        assert not inside.intersects(ConvexPolygon([(1, 2)]))
