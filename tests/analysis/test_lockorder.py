"""Lock-order / blocking-while-holding analysis on planted fixtures,
plus the clean-repo gate."""

import textwrap

import pytest

from repro.analysis import Severity
from repro.analysis.lockorder import analyze_lock_order


def plant(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run(tmp_path):
    return analyze_lock_order([str(tmp_path)])


class TestLockOrderCycles:
    def test_ab_ba_cycle_reported_both_directions(self, tmp_path):
        plant(tmp_path, """
            class Pair:
                def forward(self):
                    self.a.acquire()
                    try:
                        self.b.acquire()
                        self.b.release()
                    finally:
                        self.a.release()

                def backward(self):
                    self.b.acquire()
                    try:
                        self.a.acquire()
                        self.a.release()
                    finally:
                        self.b.release()
        """)
        findings, stats = run(tmp_path)
        lock001 = [f for f in findings if f.rule == "LOCK001"]
        assert len(lock001) == 2
        assert all(f.severity is Severity.ERROR for f in lock001)
        messages = [f.message for f in lock001]
        assert any(
            "'Pair.a' held while acquiring 'Pair.b'" in m for m in messages
        )
        assert any(
            "'Pair.b' held while acquiring 'Pair.a'" in m for m in messages
        )
        assert stats["order_edges"] == 2

    def test_self_reacquisition_is_a_cycle(self, tmp_path):
        plant(tmp_path, """
            class Table:
                def grab_twice(self):
                    self.lock.acquire()
                    self.lock.acquire()
                    self.lock.release()
                    self.lock.release()
        """)
        findings, _ = run(tmp_path)
        (finding,) = [f for f in findings if f.rule == "LOCK001"]
        assert "re-acquisition of non-reentrant lock" in finding.message
        assert "Table.lock" in finding.message

    def test_consistent_order_is_clean(self, tmp_path):
        plant(tmp_path, """
            class Pair:
                def one(self):
                    self.a.acquire()
                    self.b.acquire()
                    self.b.release()
                    self.a.release()

                def two(self):
                    self.a.acquire()
                    self.b.acquire()
                    self.b.release()
                    self.a.release()
        """)
        findings, stats = run(tmp_path)
        assert findings == []
        assert stats["order_edges"] == 1

    def test_cycle_through_a_call_edge(self, tmp_path):
        # forward() holds a and calls helper(), which acquires b;
        # backward() does b -> a directly.  The cycle only exists
        # interprocedurally.
        plant(tmp_path, """
            class Pair:
                def helper_grab(self):
                    self.b.acquire()
                    self.b.release()

                def forward(self):
                    self.a.acquire()
                    self.helper_grab()
                    self.a.release()

                def backward(self):
                    self.b.acquire()
                    self.a.acquire()
                    self.a.release()
                    self.b.release()
        """)
        findings, _ = run(tmp_path)
        lock001 = [f for f in findings if f.rule == "LOCK001"]
        assert len(lock001) == 2
        via = next(f for f in lock001 if "helper_grab" in f.message)
        assert "via call to helper_grab()" in via.message


class TestBlockingWhileHolding:
    def test_direct_sleep_under_lock(self, tmp_path):
        plant(tmp_path, """
            import time

            class Cache:
                def refresh(self):
                    self.lock.acquire()
                    try:
                        time.sleep(0.1)
                    finally:
                        self.lock.release()
        """)
        findings, _ = run(tmp_path)
        (finding,) = [f for f in findings if f.rule == "LOCK002"]
        assert "time.sleep" in finding.message
        assert "'Cache.lock'" in finding.message
        assert "directly" in finding.message

    def test_fsync_reached_through_call_chain(self, tmp_path):
        plant(tmp_path, """
            import os

            class Journal:
                def flush_record(self, fd):
                    os.fsync(fd)

                def commit(self, fd):
                    self.lock.acquire()
                    try:
                        self.flush_record(fd)
                    finally:
                        self.lock.release()
        """)
        findings, _ = run(tmp_path)
        (finding,) = [f for f in findings if f.rule == "LOCK002"]
        assert "via flush_record()" in finding.message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        plant(tmp_path, """
            import time

            class Cache:
                def refresh(self):
                    self.lock.acquire()
                    self.lock.release()
                    time.sleep(0.1)
        """)
        findings, _ = run(tmp_path)
        assert findings == []


class TestCollisionNames:
    def test_list_append_does_not_alias_journal_append(self, tmp_path):
        # `append` is a collision-prone name: without a receiver hint
        # pointing at the journal class, `results.append(...)` must not
        # inherit JoinLog.append's fsync.
        plant(tmp_path, """
            import os

            class JoinLog:
                def append(self, fd):
                    os.fsync(fd)

            class Worker:
                def collect(self):
                    self.lock.acquire()
                    results = []
                    results.append(1)
                    self.lock.release()
        """)
        findings, _ = run(tmp_path)
        assert [f for f in findings if f.rule == "LOCK002"] == []

    def test_hinted_receiver_does_resolve(self, tmp_path):
        plant(tmp_path, """
            import os

            class JoinLog:
                def append(self, fd):
                    os.fsync(fd)

            class Worker:
                def commit(self, fd):
                    self.lock.acquire()
                    self.joinlog.append(fd)
                    self.lock.release()
        """)
        findings, _ = run(tmp_path)
        (finding,) = [f for f in findings if f.rule == "LOCK002"]
        assert "via append()" in finding.message


class TestNonLockProtocols:
    def test_breaker_slot_protocol_is_not_a_lock(self, tmp_path):
        # The circuit breaker's acquire/release is a permit protocol,
        # not mutual exclusion; it has its own spec in the protocol
        # registry and must not feed the lock graph.
        plant(tmp_path, """
            import time

            class Pool:
                async def call(self, breaker):
                    breaker.acquire()
                    time.sleep(0.1)
                    breaker.release()
        """)
        findings, stats = run(tmp_path)
        assert findings == []
        assert stats["locks"] == 0


class TestRepoGate:
    def test_src_tree_is_clean(self):
        findings, stats = analyze_lock_order(["src/repro"])
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["functions"] > 100
        assert stats["locks"] > 0

    def test_stats_schema(self, tmp_path):
        plant(tmp_path, """
            async def fan_out(pool):
                await pool.gather()
        """)
        _, stats = run(tmp_path)
        assert set(stats) == {
            "files", "functions", "locks", "order_edges",
            "await_edges", "findings",
        }
        assert stats["await_edges"] == 1
