"""End-to-end tests of the ``python -m repro.analysis`` gate.

These drive the CLI in-process through ``main()`` (fast, no subprocess)
and assert the documented exit-code contract: 0 = gate passes, 1 = new
errors, 2 = internal failure.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
BAD_REPO = str(FIXTURES / "bad_repo")
PLANTED_TRACE = str(FIXTURES / "planted_race.jsonl")
CLEAN_TRACE = str(FIXTURES / "clean_trace.jsonl")
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_all_fails_on_planted_repo_and_race(self, tmp_path):
        # The acceptance criterion: planted unseeded RNG + planted trace
        # race must make `all` exit non-zero.
        report = tmp_path / "report.json"
        code = main(
            [
                "all",
                BAD_REPO,
                "--trace",
                PLANTED_TRACE,
                "--json",
                str(report),
            ]
        )
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["ok"] is False
        rules = {f["rule"] for f in payload["new_errors"]}
        assert "DET002" in rules  # the planted unseeded RNG
        assert "race-write-write" in rules  # the planted trace race

    def test_all_passes_on_committed_baseline_and_clean_trace(self):
        code = main(
            [
                "all",
                str(REPO_ROOT / "src" / "repro"),
                "--baseline",
                str(REPO_ROOT / "analysis-baseline.json"),
                "--trace",
                CLEAN_TRACE,
            ]
        )
        assert code == 0

    def test_internal_failure_exits_two(self):
        assert main(["races", "--trace", "/nonexistent/trace.jsonl"]) == 2


class TestLintCommand:
    def test_lint_clean_repo_exits_zero(self):
        assert main(["lint", str(REPO_ROOT / "src" / "repro")]) == 0

    def test_lint_bad_repo_exits_one(self):
        assert main(["lint", BAD_REPO]) == 1

    def test_select_narrows_the_gate(self):
        # Only PAIR001 selected: the DET/TRC/FORK plants don't count.
        code = main(["lint", BAD_REPO, "--select", "PAIR001"])
        assert code == 1
        code = main(
            ["lint", str(FIXTURES / "bad_repo" / "sim"), "--select", "PAIR001"]
        )
        assert code == 0


class TestBaselineRatchet:
    def test_baselined_debt_passes_then_new_debt_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        # Accept the current debt of the fixture repo...
        assert (
            main(["lint", BAD_REPO, "--write-baseline", "--baseline", str(baseline)])
            == 0
        )
        # ...now the same findings are ratcheted, the gate passes...
        assert main(["lint", BAD_REPO, "--baseline", str(baseline)]) == 0
        # ...but a repo with MORE debt than the baseline fails.
        extra = tmp_path / "worse" / "sim"
        extra.mkdir(parents=True)
        (extra / "more.py").write_text(
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
        )
        assert (
            main(
                [
                    "lint",
                    BAD_REPO,
                    str(tmp_path / "worse"),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 1
        )

    def test_line_drift_keeps_baseline_identity(self, tmp_path):
        # Fingerprints exclude line numbers: shifting a known finding a
        # few lines down must not break the gate.
        repo_a = tmp_path / "a" / "sim"
        repo_a.mkdir(parents=True)
        (repo_a / "mod.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(tmp_path / "a"),
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        (repo_a / "mod.py").write_text(
            "import time\n"
            "# a comment pushing things down\n"
            "\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert (
            main(["lint", str(tmp_path / "a"), "--baseline", str(baseline)])
            == 0
        )


class TestRacesCommand:
    def test_planted_trace_gates(self):
        assert main(["races", "--trace", PLANTED_TRACE]) == 1

    def test_clean_trace_passes(self):
        assert main(["races", "--trace", CLEAN_TRACE]) == 0

    def test_explain_prints_access_histories(self, capsys):
        main(["races", "--trace", PLANTED_TRACE, "--explain"])
        out = capsys.readouterr().out
        assert "access A" in out and "access B" in out


class TestExternalCommand:
    def test_external_never_gates(self):
        # ruff/mypy findings are warnings; missing tools are skipped notes.
        assert main(["external", str(REPO_ROOT / "src" / "repro")]) == 0

    def test_report_records_tool_status(self, tmp_path, capsys):
        main(["external", BAD_REPO])
        out = capsys.readouterr().out
        assert "[ruff]" in out and "[mypy]" in out


class TestJsonReport:
    def test_report_shape(self, tmp_path):
        report = tmp_path / "out.json"
        main(["lint", BAD_REPO, "--json", str(report)])
        payload = json.loads(report.read_text())
        assert set(payload) == {
            "ok",
            "counts",
            "tools",
            "baseline",
            "new_errors",
            "findings",
        }
        assert payload["counts"]["error"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert finding["fingerprint"]
            assert finding["severity"] == "error"
