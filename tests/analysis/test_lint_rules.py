"""Per-rule tests of the AST lint engine over the planted fixture repo."""

from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import Severity, run_lint
from repro.analysis.lint import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures"
BAD_REPO = FIXTURES / "bad_repo"

#: rule id -> (file the planted positives live in, expected count)
EXPECTED = {
    "DET001": ("sim/clock.py", 2),
    "DET002": ("sim/clock.py", 2),
    "TRC001": ("sim/emitter.py", 2),
    "TRC002": ("sim/emitter.py", 1),
    "PAIR001": ("service/handler.py", 1),
    "PAIR002": ("service/handler.py", 1),
    "FORK001": ("join/mpwork.py", 2),
    "ASYNC001": ("service/handler.py", 2),
}


@pytest.fixture(scope="module")
def bad_findings():
    findings, stats = run_lint([BAD_REPO])
    assert stats["parse_failures"] == 0
    return findings


class TestPlantedPositives:
    @pytest.mark.parametrize("rule", sorted(EXPECTED))
    def test_rule_fires_expected_count(self, bad_findings, rule):
        expected_file, expected_count = EXPECTED[rule]
        hits = [f for f in bad_findings if f.rule == rule]
        assert len(hits) == expected_count, [f.render() for f in hits]
        for finding in hits:
            assert finding.path.replace("\\", "/").endswith(expected_file)
            assert finding.severity is Severity.ERROR

    def test_total_is_exactly_the_planted_set(self, bad_findings):
        counts = Counter(f.rule for f in bad_findings)
        assert counts == Counter(
            {rule: count for rule, (_, count) in EXPECTED.items()}
        )

    def test_messages_name_the_offender(self, bad_findings):
        assert "time.time" in " ".join(
            f.message for f in bad_findings if f.rule == "DET001"
        )
        assert "MISSING_EVENT" in " ".join(
            f.message for f in bad_findings if f.rule == "TRC001"
        )
        assert "_CURRENT" in " ".join(
            f.message for f in bad_findings if f.rule == "FORK001"
        )


class TestSuppression:
    """Every fixture file carries one suppressed twin per planted finding."""

    def test_no_finding_on_noqa_lines(self, bad_findings):
        for finding in bad_findings:
            source_file = BAD_REPO / Path(
                *Path(finding.path).parts[
                    Path(finding.path).parts.index("bad_repo") + 1 :
                ]
            )
            line = source_file.read_text().splitlines()[finding.line - 1]
            assert "repro: noqa" not in line
            assert "repro: fork-init" not in line

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa\n"
        )
        findings, _ = run_lint([tmp_path])
        assert findings == []

    def test_mismatched_noqa_does_not_suppress(self, tmp_path):
        sim = tmp_path / "sim"
        sim.mkdir()
        (sim / "mod.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa[DET002]\n"
        )
        findings, _ = run_lint([tmp_path])
        assert [f.rule for f in findings] == ["DET001"]


class TestScoping:
    def test_rules_do_not_fire_outside_their_scope(self, tmp_path):
        # The same wall-clock call in an unscoped directory is fine.
        util = tmp_path / "tools"
        util.mkdir()
        (util / "mod.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        findings, _ = run_lint([tmp_path])
        assert findings == []

    def test_syntax_error_reported_not_crashing(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        findings, stats = run_lint([tmp_path])
        assert stats["parse_failures"] == 1
        assert [f.rule for f in findings] == ["PARSE"]
        assert findings[0].severity is Severity.ERROR

    def test_iter_python_files_mixes_files_and_dirs(self):
        files = iter_python_files([BAD_REPO, BAD_REPO / "sim" / "clock.py"])
        names = {f.name for f in files}
        assert "clock.py" in names and "handler.py" in names

    def test_select_restricts_rules(self):
        findings, _ = run_lint([BAD_REPO], select=["DET001"])
        assert {f.rule for f in findings} == {"DET001"}


class TestRealSource:
    def test_src_repro_is_clean_against_the_rules(self):
        # The committed baseline is empty; the source tree must stay clean.
        repo_root = Path(__file__).resolve().parents[2]
        findings, stats = run_lint([repo_root / "src" / "repro"])
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["files"] > 50
