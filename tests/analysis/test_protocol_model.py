"""Bounded model checker: machinery units plus the shipped-spec proofs."""

import pytest

from repro.analysis.protocol import (
    SPECS,
    ProtocolSpec,
    SafetyProperty,
    Transition,
    check_spec,
    format_counterexample,
    get_spec,
)


def _inc(counter):
    def effect(vars, actor, data):
        vars[counter] = vars.get(counter, 0) + 1

    return effect


def toy_spec(**overrides):
    """A two-state counter machine the machinery tests mutate."""
    base = dict(
        name="toy",
        description="toy",
        states=("a", "b"),
        initial="a",
        vars={"n": 0},
        actors=1,
        transitions=(
            Transition(
                "step",
                "a",
                "b",
                bound=lambda v, a, d: v["n"] < 3,
                effect=_inc("n"),
            ),
            Transition("back", "b", "a"),
        ),
        properties=(
            SafetyProperty(
                "bounded", "n stays small", lambda s, v, a: v["n"] <= 3
            ),
        ),
    )
    base.update(overrides)
    return ProtocolSpec(**base)


class TestMachinery:
    def test_proves_a_holding_property(self):
        result = check_spec(toy_spec())
        assert result.ok
        assert result.properties == {"bounded": True}
        assert result.states_explored > 0
        assert not result.truncated

    def test_counterexample_is_shortest(self):
        # n reaches 2 after two steps; the property fails there first.
        spec = toy_spec(
            properties=(
                SafetyProperty(
                    "tiny", "n below 2", lambda s, v, a: v["n"] < 2
                ),
            )
        )
        result = check_spec(spec)
        assert not result.ok
        (failure,) = result.failures
        assert failure.prop == "tiny"
        # Shortest path: step, back, step (BFS guarantees minimality).
        assert len(failure.path) == 3
        assert [s.transition for s in failure.path] == [
            "step", "back", "step",
        ]

    def test_deadlock_property_checked_only_at_quiescence(self):
        # Without "back", state b with n == 3 is quiescent; an "always"
        # variant of the same predicate would fail at the FIRST b state.
        spec = toy_spec(
            transitions=(
                Transition(
                    "step",
                    "a",
                    "b",
                    bound=lambda v, a, d: v["n"] < 1,
                    effect=_inc("n"),
                ),
            ),
            properties=(
                SafetyProperty(
                    "no_wedge_in_b",
                    "never quiesces in b",
                    lambda s, v, a: s != "b",
                    on="deadlock",
                ),
            ),
        )
        result = check_spec(spec)
        assert not result.ok
        (failure,) = result.failures
        assert failure.deadlock
        assert failure.state[0] == "b"

    def test_exploration_continues_after_a_failure(self):
        # One property fails early; the other must still be proved.
        spec = toy_spec(
            properties=(
                SafetyProperty(
                    "fails", "n below 1", lambda s, v, a: v["n"] < 1
                ),
                SafetyProperty(
                    "holds", "n bounded", lambda s, v, a: v["n"] <= 3
                ),
            )
        )
        result = check_spec(spec)
        assert result.properties == {"fails": False, "holds": True}
        assert len(result.failures) == 1

    def test_unbounded_spec_truncates(self):
        spec = toy_spec(
            transitions=(
                Transition("step", "a", "b", effect=_inc("n")),
                Transition("back", "b", "a", effect=_inc("n")),
            )
        )
        result = check_spec(spec, max_states=50)
        assert result.truncated
        assert not result.ok

    def test_actor_local_states_gate_transitions(self):
        # Only an actor in "ready" may fire; with one of two actors ever
        # readied, at most one fire is reachable.
        spec = ProtocolSpec(
            name="actors",
            description="actor-local gating",
            states=("s",),
            initial="s",
            vars={"fired": 0},
            actors=2,
            actor_states=("idle", "ready", "done"),
            transitions=(
                Transition(
                    "ready_up",
                    "s",
                    "s",
                    actor_source="idle",
                    actor_target="ready",
                    guard=lambda v, a, d: a == 0,
                ),
                Transition(
                    "fire",
                    "s",
                    "s",
                    actor_source="ready",
                    actor_target="done",
                    effect=_inc("fired"),
                ),
            ),
            properties=(
                SafetyProperty(
                    "one_fire",
                    "only the readied actor fires",
                    lambda s, v, a: v["fired"] <= 1,
                ),
            ),
        )
        result = check_spec(spec)
        assert result.ok

    def test_format_counterexample_renders_path(self):
        spec = toy_spec(
            properties=(
                SafetyProperty(
                    "tiny", "n below 1", lambda s, v, a: v["n"] < 1
                ),
            )
        )
        result = check_spec(spec)
        text = format_counterexample(spec, result.failures[0])
        assert "counterexample for toy::tiny" in text
        assert "step" in text
        assert "path (" in text


class TestShippedSpecs:
    @pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
    def test_every_declared_property_is_proved(self, spec):
        result = check_spec(spec)
        assert result.ok, [
            format_counterexample(spec, f) for f in result.failures
        ]
        assert result.properties
        assert all(result.properties.values())
        assert not result.truncated

    @pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
    def test_state_spaces_stay_tiny(self, spec):
        # The bounds in each spec keep exploration well under the cap —
        # a regression here means someone dropped a bound.
        result = check_spec(spec)
        assert 0 < result.states_explored < 10_000

    def test_registry_lookup(self):
        assert get_spec("lease").name == "lease"
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_spec_names_are_unique(self):
        names = [s.name for s in SPECS]
        assert len(names) == len(set(names))
