"""Planted-mutation suite: each deliberately broken spec must yield a
counterexample for exactly the property it targets.

This is the gate's self-test — if a mutation stops producing a
counterexample, the model checker has gone too weak to trust.
"""

import pytest

from repro.analysis.protocol import (
    MUTATIONS,
    check_spec,
    format_counterexample,
    get_spec,
)

IDS = [m.name for m in MUTATIONS]


class TestMutations:
    @pytest.mark.parametrize("mutation", MUTATIONS, ids=IDS)
    def test_mutation_violates_its_target_property(self, mutation):
        mutated = mutation.apply(get_spec(mutation.spec_name))
        result = check_spec(mutated)
        assert result.properties.get(mutation.expect_property) is False, (
            f"{mutation.name} did not break {mutation.expect_property}: "
            f"{result.summary()}"
        )

    @pytest.mark.parametrize("mutation", MUTATIONS, ids=IDS)
    def test_counterexample_has_a_concrete_path(self, mutation):
        mutated = mutation.apply(get_spec(mutation.spec_name))
        result = check_spec(mutated)
        failure = next(
            f for f in result.failures if f.prop == mutation.expect_property
        )
        text = format_counterexample(mutated, failure)
        assert mutation.expect_property in text
        # Deadlock wedges can occur at depth 0 in principle, but every
        # planted break needs at least one step to manifest.
        assert len(failure.path) >= 1

    @pytest.mark.parametrize("mutation", MUTATIONS, ids=IDS)
    def test_no_collateral_property_damage(self, mutation):
        # A mutation must break its target, not shotgun the whole spec —
        # otherwise the suite can't tell a precise checker from one that
        # fails everything.
        mutated = mutation.apply(get_spec(mutation.spec_name))
        result = check_spec(mutated)
        broken = {p for p, ok in result.properties.items() if not ok}
        assert mutation.expect_property in broken
        assert not result.truncated

    def test_mutation_names_unique(self):
        names = [m.name for m in MUTATIONS]
        assert len(names) == len(set(names))

    def test_every_spec_has_at_least_one_mutation(self):
        # The breaker, lease, journal, settlement and directory specs are
        # each exercised by the self-test.
        assert {m.spec_name for m in MUTATIONS} == {
            "circuit-breaker",
            "lease",
            "journal",
            "shard-settlement",
            "buffer-directory",
        }

    @pytest.mark.parametrize("mutation", MUTATIONS, ids=IDS)
    def test_apply_does_not_mutate_the_registry_spec(self, mutation):
        pristine = get_spec(mutation.spec_name)
        mutation.apply(pristine)
        # The registry copy still proves all its properties.
        result = check_spec(get_spec(mutation.spec_name))
        assert result.ok, result.summary()
