"""Spec-compiled conformance monitors: clean streams pass, planted
protocol violations are flagged, and the monitors ride in the standard
checker sets."""

import pytest

from repro.analysis.protocol import (
    ProtocolConformanceChecker,
    conformance_checkers,
    get_spec,
)
from repro.trace.checkers import default_checkers, run_checkers
from repro.trace.events import EventKind, TraceEvent


def ev(seq, kind, proc=-1, **data):
    return TraceEvent(seq, seq * 0.001, kind, proc, data)


def replay(spec_name, events):
    checker = ProtocolConformanceChecker(get_spec(spec_name))
    for event in events:
        checker.handle(event)
    return checker.finish()


class TestRegistry:
    def test_one_monitor_per_spec(self):
        checkers = conformance_checkers()
        names = {c.name for c in checkers}
        assert names == {
            "protocol:circuit-breaker",
            "protocol:lease",
            "protocol:journal",
            "protocol:shard-settlement",
            "protocol:buffer-directory",
        }

    def test_monitors_ride_in_default_checker_set(self):
        names = {c.name for c in default_checkers()}
        assert "protocol:shard-settlement" in names
        assert "protocol:buffer-directory" in names

    def test_vacuous_on_foreign_streams(self):
        # A stream with none of the spec's events yields a clean verdict
        # (this is what lets all five ride on every run).
        verdict = replay(
            "lease", [ev(0, EventKind.BUFFER_INSERT, 0, page=1)]
        )
        assert verdict.ok


class TestSettlement:
    def test_clean_fanout_passes(self):
        verdict = replay("shard-settlement", [
            ev(0, EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0),
            ev(1, EventKind.SHD_SUBREQUEST_SENT, req=1, shard=1),
            ev(2, EventKind.SHD_FAILOVER, req=1, shard=1),
            ev(3, EventKind.SHD_SUBREQUEST_SENT, req=1, shard=1),
            ev(4, EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0),
            ev(5, EventKind.SHD_SUBREQUEST_DONE, req=1, shard=1),
        ])
        assert verdict.ok, verdict.violations
        assert verdict.stats["instances"] == 2

    def test_failed_without_sent_is_flagged(self):
        verdict = replay("shard-settlement", [
            ev(0, EventKind.SHD_SUBREQUEST_FAILED, req=1, shard=0,
               error="deadline"),
        ])
        assert not verdict.ok
        assert "no transition enabled" in verdict.violations[0]

    def test_failed_after_unhonoured_failover_is_flagged(self):
        # FAILOVER promises a resend; settling FAILED instead breaks the
        # promise (give_up fires only from inflight, not retry_pending).
        verdict = replay("shard-settlement", [
            ev(0, EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0),
            ev(1, EventKind.SHD_FAILOVER, req=1, shard=0),
            ev(2, EventKind.SHD_SUBREQUEST_FAILED, req=1, shard=0,
               error="crash"),
        ])
        assert not verdict.ok
        assert "retry_pending" in verdict.violations[0]

    def test_unsettled_sent_is_flagged_at_end(self):
        verdict = replay("shard-settlement", [
            ev(0, EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0),
        ])
        assert not verdict.ok
        joined = "\n".join(verdict.violations)
        assert "non-terminal" in joined
        assert "fanout_settled" in joined


class TestLease:
    def test_clean_lifecycle_passes(self):
        verdict = replay("lease", [
            ev(0, EventKind.LSE_GRANTED, 0, task=7, lease=1),
            ev(1, EventKind.LSE_EXPIRED, 0, task=7, lease=1),
            ev(2, EventKind.LSE_REQUEUED, 0, task=7),
            ev(3, EventKind.LSE_GRANTED, 1, task=7, lease=2),
            ev(4, EventKind.LSE_COMPLETED, 1, task=7, lease=2),
            ev(5, EventKind.LSE_DUP_DROPPED, 0, task=7),
        ])
        assert verdict.ok, verdict.violations

    def test_double_completion_is_flagged(self):
        verdict = replay("lease", [
            ev(0, EventKind.LSE_GRANTED, 0, task=7, lease=1),
            ev(1, EventKind.LSE_COMPLETED, 0, task=7, lease=1),
            ev(2, EventKind.LSE_COMPLETED, 1, task=7, lease=1),
        ])
        assert not verdict.ok
        assert "no transition enabled" in verdict.violations[0]

    def test_expiry_without_requeue_wedges_as_orphaned(self):
        verdict = replay("lease", [
            ev(0, EventKind.LSE_GRANTED, 0, task=7, lease=1),
            ev(1, EventKind.LSE_EXPIRED, 0, task=7, lease=1),
        ])
        assert not verdict.ok
        joined = "\n".join(verdict.violations)
        assert "'orphaned'" in joined and "non-terminal" in joined

    def test_secondary_splits_do_not_advance_the_automaton(self):
        # split > 0 events are filtered by the `when` clause: a lone
        # secondary completion neither advances state nor counts.
        verdict = replay("lease", [
            ev(0, EventKind.LSE_COMPLETED, 0, task=7, lease=1, split=1),
        ])
        assert verdict.ok
        assert verdict.stats["completions"] == 0


class TestBreaker:
    def test_clean_trip_probe_recover_passes(self):
        verdict = replay("circuit-breaker", [
            ev(0, EventKind.SUP_BREAKER_OPEN, cls="window"),
            ev(1, EventKind.SUP_BREAKER_HALF_OPEN, cls="window"),
            ev(2, EventKind.SUP_BREAKER_CLOSED, cls="window"),
        ])
        assert verdict.ok, verdict.violations

    def test_unlawful_edge_is_flagged(self):
        # CLOSED is only announced by a successful half-open probe; a
        # breaker claiming CLOSED from CLOSED took an edge the spec
        # doesn't have.
        verdict = replay("circuit-breaker", [
            ev(0, EventKind.SUP_BREAKER_CLOSED, cls="window"),
        ])
        assert not verdict.ok
        assert "no transition enabled" in verdict.violations[0]

    def test_classes_are_independent_instances(self):
        verdict = replay("circuit-breaker", [
            ev(0, EventKind.SUP_BREAKER_OPEN, cls="window"),
            ev(1, EventKind.SUP_BREAKER_OPEN, cls="join"),
        ])
        assert verdict.ok
        assert verdict.stats["instances"] == 2


class TestDirectory:
    def test_lawful_handover_passes(self):
        verdict = replay("buffer-directory", [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(1, EventKind.REMOTE_FETCH, 1, page=3, owner=0),
            ev(2, EventKind.PAGE_DEREGISTERED, 0, page=3),
            ev(3, EventKind.PAGE_REGISTERED, 1, page=3),
        ])
        assert verdict.ok, verdict.violations

    def test_stale_deregister_is_flagged(self):
        verdict = replay("buffer-directory", [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(1, EventKind.PAGE_DEREGISTERED, 1, page=3),
        ])
        assert not verdict.ok
        assert "no transition enabled" in verdict.violations[0]

    def test_foreign_register_overwrite_is_flagged(self):
        verdict = replay("buffer-directory", [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(1, EventKind.PAGE_REGISTERED, 1, page=3),
        ])
        assert not verdict.ok


class TestJournal:
    def test_scan_ledger_agreement_passes(self):
        verdict = replay("journal", [
            ev(0, EventKind.JNL_APPENDED, task=1),
            ev(1, EventKind.JNL_TORN_DETECTED, line=2),
            ev(2, EventKind.JNL_SCANNED, records=1, torn=1),
            ev(3, EventKind.JNL_REPLAYED, task=1),
        ])
        assert verdict.ok, verdict.violations

    def test_scan_ledger_disagreement_is_flagged(self):
        # The scan summary claims two torn lines but only one per-line
        # detection was emitted: the end invariant catches the skew.
        verdict = replay("journal", [
            ev(0, EventKind.JNL_TORN_DETECTED, line=2),
            ev(1, EventKind.JNL_SCANNED, records=1, torn=2),
        ])
        assert not verdict.ok
        assert "scan_torn_ledger" in verdict.violations[0]


class TestRealSimulation:
    @pytest.mark.slow
    def test_traced_gsrr_run_conforms(self, tmp_path):
        from repro.datagen import build_tree, paper_maps
        from repro.join import (
            GSRR,
            ParallelJoinConfig,
            parallel_spatial_join,
            prepare_trees,
        )
        from repro.trace import TraceConfig
        from repro.trace.sinks import read_jsonl

        map_r, map_s = paper_maps(scale=0.02)
        tree_r, tree_s = build_tree(map_r), build_tree(map_s)
        store = prepare_trees(tree_r, tree_s)
        trace_path = tmp_path / "run.jsonl"
        parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=4,
                disks=4,
                total_buffer_pages=96,
                variant=GSRR,
                trace=TraceConfig(
                    keep_events=False,
                    checkers=False,
                    jsonl_path=str(trace_path),
                ),
            ),
            page_store=store,
        )
        verdicts = run_checkers(
            read_jsonl(trace_path), conformance_checkers()
        )
        bad = [v for v in verdicts if not v.ok]
        assert bad == [], [
            (v.checker, v.violations) for v in bad
        ]
        directory = next(
            v for v in verdicts if v.checker == "protocol:buffer-directory"
        )
        assert directory.stats["instances"] > 0
