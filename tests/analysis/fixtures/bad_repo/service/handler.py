"""Fixture: planted pairing and async-discipline violations."""

import asyncio
import time


class Pool:
    def __init__(self, breaker, lock):
        self.breaker = breaker
        self.lock = lock

    def call_bad(self):
        if not self.breaker.allow():  # planted PAIR001
            return None
        return self.breaker.record_success()

    def call_ok(self):
        if not self.breaker.allow():  # negative: settled in finally
            return None
        try:
            return 1
        finally:
            self.breaker.release()

    def call_suppressed(self):
        return self.breaker.allow()  # repro: noqa[PAIR001]

    def latch_bad(self):
        self.lock.acquire()  # planted PAIR002
        return 1

    def latch_ok(self):
        self.lock.acquire()  # negative: released in finally
        try:
            return 1
        finally:
            self.lock.release()

    def latch_suppressed(self):
        self.lock.acquire()  # repro: noqa[PAIR002]


async def handle_bad():
    time.sleep(0.1)  # planted ASYNC001
    with open("/tmp/fixture") as fh:  # planted ASYNC001
        return fh.read()


async def handle_suppressed():
    time.sleep(0.1)  # repro: noqa[ASYNC001]


async def handle_ok():
    await asyncio.sleep(0.1)

    def blocking_helper():  # negative: nested sync def runs off-loop
        time.sleep(1)

    return blocking_helper
