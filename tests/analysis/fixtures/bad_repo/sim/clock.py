"""Fixture: planted determinism violations in a sim-scoped module."""

import random
import time
from datetime import datetime


def now_bad():
    return time.time()  # planted DET001


def now_suppressed():
    return time.time()  # repro: noqa[DET001]


def stamp_bad():
    return datetime.now()  # planted DET001


def jitter_bad():
    return random.random()  # planted DET002


def jitter_suppressed():
    return random.random()  # repro: noqa[DET002]


def rng_bad():
    return random.Random()  # planted DET002: no seed


def rng_ok(seed):
    return random.Random(seed)  # negative: seeded, must not fire
