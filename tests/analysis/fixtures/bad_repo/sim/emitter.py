"""Fixture: planted trace-discipline violations."""

from ..trace.events import EventKind


def run(tracer):
    tracer.emit(EventKind.GOOD_EVENT, proc=0)  # negative: declared
    tracer.emit(EventKind.MISSING_EVENT, proc=0)  # planted TRC001
    tracer.emit("stringly_event", proc=0)  # planted TRC001
    tracer.emit("suppressed_event", proc=0)  # repro: noqa[TRC001]
    tracer.emit(EventKind.FLT_INJECT_CRASH, call=1)  # planted TRC002
    tracer.emit(EventKind.SUP_CALL_FAILED, call=1)  # repro: noqa[TRC002]
    tracer.emit(EventKind.SUP_CALL_OK, call=1)  # negative: reconciled
