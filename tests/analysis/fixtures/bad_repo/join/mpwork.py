"""Fixture: planted fork-safety violations."""

import multiprocessing  # noqa: F401 - marks the module as fork-using

_REGISTRY = {}
_CURRENT = None


def _fork_init(key):
    global _CURRENT
    _CURRENT = key  # negative: registered initializer


def park_bad(trees):
    global _CURRENT
    _CURRENT = trees  # planted FORK001


def park_marked(trees):
    global _CURRENT
    _CURRENT = trees  # repro: fork-init


def register_bad(key, trees):
    _REGISTRY[key] = trees  # planted FORK001 (subscript store)


def register_suppressed(key, trees):
    _REGISTRY[key] = trees  # repro: noqa[FORK001]
