"""Fixture: the event registry of the planted repo."""

import enum


class EventKind(str, enum.Enum):
    GOOD_EVENT = "good_event"
    FLT_INJECT_CRASH = "flt_inject_crash"
    SUP_CALL_OK = "sup_call_ok"
    SUP_CALL_FAILED = "sup_call_failed"
