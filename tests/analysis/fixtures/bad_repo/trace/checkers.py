"""Fixture: the accounting checker only reconciles SUP_CALL_OK."""

from .events import EventKind

RECONCILED = {EventKind.SUP_CALL_OK}
