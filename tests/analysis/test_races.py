"""Tests of the trace-driven lockset/happens-before race detector."""

from pathlib import Path

import pytest

from repro.analysis import Severity, detect_races
from repro.analysis.races import RaceDetector
from repro.trace.events import EventKind, TraceEvent

FIXTURES = Path(__file__).parent / "fixtures"


def ev(seq, kind, proc, **data):
    return TraceEvent(seq, seq * 0.001, kind, proc, data)


class TestPlantedRaces:
    @pytest.fixture(scope="class")
    def planted(self):
        findings, stats = detect_races(FIXTURES / "planted_race.jsonl")
        return findings, stats

    def test_all_three_race_classes_found(self, planted):
        findings, _ = planted
        assert {f.rule for f in findings} == {
            "race-write-write",
            "race-double-residency",
            "race-lost-update",
        }

    def test_planted_races_are_errors(self, planted):
        findings, _ = planted
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_stats_report_global_mode(self, planted):
        _, stats = planted
        assert stats["mode"] == "global"
        assert stats["races"] == 3

    def test_finding_names_both_processors(self, planted):
        findings, _ = planted
        ww = next(f for f in findings if f.rule == "race-write-write")
        assert "proc 0" in ww.message and "proc 1" in ww.message
        assert "page 9" in ww.message


class TestCleanTraces:
    def test_clean_protocol_trace_passes(self):
        findings, stats = detect_races(FIXTURES / "clean_trace.jsonl")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["mode"] == "global"

    def test_local_mode_skips_page_analysis(self):
        # Without directory events, per-processor copies are private and
        # multi-residency is legitimate — no findings at all.
        events = [
            ev(0, EventKind.BUFFER_INSERT, 0, page=9),
            ev(1, EventKind.BUFFER_INSERT, 1, page=9),
            ev(2, EventKind.BUFFER_EVICT, 0, page=9),
        ]
        findings, stats = detect_races(events)
        assert findings == []
        assert stats["mode"] == "local"

    def test_latch_serialises_directory_slots(self):
        # Lawful handover: register -> deregister -> register by another
        # proc; all latched, so neither HB nor state rules fire.
        events = [
            ev(0, EventKind.BUFFER_INSERT, 0, page=3),
            ev(1, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(2, EventKind.BUFFER_EVICT, 0, page=3),
            ev(3, EventKind.PAGE_DEREGISTERED, 0, page=3),
            ev(4, EventKind.BUFFER_INSERT, 1, page=3),
            ev(5, EventKind.PAGE_REGISTERED, 1, page=3),
        ]
        findings, _ = detect_races(events)
        assert [f for f in findings if f.severity is Severity.ERROR] == []


class TestStateRules:
    def test_stale_deregister_detected(self):
        events = [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=7),
            ev(1, EventKind.PAGE_DEREGISTERED, 1, page=7),
        ]
        findings, _ = detect_races(events)
        assert [f.rule for f in findings] == ["race-lost-update"]
        assert "stale" in findings[0].message

    def test_same_owner_reregistration_is_lawful(self):
        events = [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=7),
            ev(1, EventKind.PAGE_REGISTERED, 0, page=7),
        ]
        findings, _ = detect_races(events)
        assert findings == []

    def test_duplicate_reports_are_collapsed(self):
        # The same racing pair on the same page is reported once, not per
        # repeated access.
        events = [
            ev(0, EventKind.REMOTE_FETCH, 2, page=1, owner=3),
            ev(1, EventKind.BUFFER_INSERT, 0, page=9),
            ev(2, EventKind.BUFFER_INSERT, 1, page=9),
            ev(3, EventKind.BUFFER_INSERT, 0, page=9),
            ev(4, EventKind.BUFFER_INSERT, 1, page=9),
        ]
        findings, _ = detect_races(events)
        rules = [f.rule for f in findings]
        assert rules.count("race-write-write") == 1
        assert rules.count("race-double-residency") == 1


class TestExplainMode:
    def test_explain_attaches_both_access_histories(self):
        findings, _ = detect_races(
            FIXTURES / "planted_race.jsonl", explain=True
        )
        ww = next(f for f in findings if f.rule == "race-write-write")
        joined = "\n".join(ww.context)
        assert "access A" in joined and "access B" in joined
        assert "buffer_insert" in joined

    def test_without_explain_context_is_empty(self):
        findings, _ = detect_races(FIXTURES / "planted_race.jsonl")
        assert all(f.context == () for f in findings)


class TestLatchEdges:
    """The lease-table and router-settlement latch clocks (happens-before
    coverage for recovery and shard traces, not just the buffer
    directory)."""

    def test_lease_events_thread_happens_before_across_holders(self):
        # grant(0) -> expire(0) -> requeue(0) -> grant(1): the regrant to
        # proc 1 goes through the lease-table lock, so everything proc 0
        # did under it happened-before proc 1's grant.
        detector = RaceDetector()
        for event in (
            ev(0, EventKind.LSE_GRANTED, 0, task=7, lease=1),
            ev(1, EventKind.LSE_EXPIRED, 0, task=7, lease=1),
            ev(2, EventKind.LSE_REQUEUED, 0, task=7),
            ev(3, EventKind.LSE_GRANTED, 1, task=7, lease=2),
        ):
            detector.feed(event)
        findings = detector.finish()
        assert findings == []
        assert detector.stats["mode"] == "local"
        assert detector.stats["latches"] == 1
        # Proc 1's clock has absorbed proc 0's final lease-table epoch.
        assert detector._clocks[1].get(0, 0) >= detector._clocks[0][0]

    def test_settlement_events_get_synthetic_actors(self):
        # SHD_* events are emitted with proc == -1; previously the
        # detector dropped them on the floor.  Now each shard's
        # settlements and the coordinator's route/merge are actors whose
        # clocks chain through the settlement lock.
        detector = RaceDetector()
        for event in (
            ev(0, EventKind.SHD_REQUEST_ROUTED, -1, req=1, cls="window"),
            ev(1, EventKind.SHD_SUBREQUEST_SENT, -1, req=1, shard=0),
            ev(2, EventKind.SHD_SUBREQUEST_SENT, -1, req=1, shard=1),
            ev(3, EventKind.SHD_SUBREQUEST_DONE, -1, req=1, shard=0),
            ev(4, EventKind.SHD_SUBREQUEST_DONE, -1, req=1, shard=1),
            ev(5, EventKind.SHD_MERGED, -1, req=1, cls="window"),
        ):
            detector.feed(event)
        findings = detector.finish()
        assert findings == []
        coordinator = detector._clocks[-2]
        shard_actors = [a for a in detector._clocks if a <= -10]
        assert len(shard_actors) == 2
        # At the merge, the coordinator has seen every shard's settle.
        for actor in shard_actors:
            assert coordinator.get(actor, 0) == detector._clocks[actor][actor]

    def test_non_settlement_coordinator_events_stay_untracked(self):
        detector = RaceDetector()
        detector.feed(ev(0, EventKind.SHD_SHARD_UP, -1, shard=0))
        assert detector.finish() == []
        assert detector._clocks == {}

    def test_each_latch_has_its_own_clock(self):
        # Directory and lease events must not serialise each other.
        events = [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(1, EventKind.LSE_GRANTED, 1, task=7, lease=1),
        ]
        findings, stats = detect_races(events)
        assert findings == []
        assert stats["latches"] == 2


class TestSinkProtocol:
    def test_detector_is_a_trace_sink(self):
        detector = RaceDetector(source="inline")
        for event in (
            ev(0, EventKind.REMOTE_FETCH, 0, page=1, owner=2),
            ev(1, EventKind.BUFFER_INSERT, 0, page=9),
            ev(2, EventKind.BUFFER_INSERT, 1, page=9),
        ):
            detector.handle(event)
        findings = detector.finish()
        assert findings and findings[0].path == "inline"


class TestRealSimulation:
    @pytest.mark.slow
    def test_traced_gsrr_run_has_no_race_errors(self, tmp_path):
        from repro.datagen import build_tree, paper_maps
        from repro.join import (
            GSRR,
            ParallelJoinConfig,
            parallel_spatial_join,
            prepare_trees,
        )
        from repro.trace import TraceConfig

        map_r, map_s = paper_maps(scale=0.02)
        tree_r, tree_s = build_tree(map_r), build_tree(map_s)
        store = prepare_trees(tree_r, tree_s)
        trace_path = tmp_path / "run.jsonl"
        parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=4,
                disks=4,
                total_buffer_pages=96,
                variant=GSRR,
                trace=TraceConfig(
                    keep_events=False,
                    checkers=False,
                    jsonl_path=str(trace_path),
                ),
            ),
            page_store=store,
        )
        findings, stats = detect_races(trace_path)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["mode"] == "global"
        assert stats["events"] > 1000
