"""Tests of the trace-driven lockset/happens-before race detector."""

from pathlib import Path

import pytest

from repro.analysis import Severity, detect_races
from repro.analysis.races import RaceDetector
from repro.trace.events import EventKind, TraceEvent

FIXTURES = Path(__file__).parent / "fixtures"


def ev(seq, kind, proc, **data):
    return TraceEvent(seq, seq * 0.001, kind, proc, data)


class TestPlantedRaces:
    @pytest.fixture(scope="class")
    def planted(self):
        findings, stats = detect_races(FIXTURES / "planted_race.jsonl")
        return findings, stats

    def test_all_three_race_classes_found(self, planted):
        findings, _ = planted
        assert {f.rule for f in findings} == {
            "race-write-write",
            "race-double-residency",
            "race-lost-update",
        }

    def test_planted_races_are_errors(self, planted):
        findings, _ = planted
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_stats_report_global_mode(self, planted):
        _, stats = planted
        assert stats["mode"] == "global"
        assert stats["races"] == 3

    def test_finding_names_both_processors(self, planted):
        findings, _ = planted
        ww = next(f for f in findings if f.rule == "race-write-write")
        assert "proc 0" in ww.message and "proc 1" in ww.message
        assert "page 9" in ww.message


class TestCleanTraces:
    def test_clean_protocol_trace_passes(self):
        findings, stats = detect_races(FIXTURES / "clean_trace.jsonl")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["mode"] == "global"

    def test_local_mode_skips_page_analysis(self):
        # Without directory events, per-processor copies are private and
        # multi-residency is legitimate — no findings at all.
        events = [
            ev(0, EventKind.BUFFER_INSERT, 0, page=9),
            ev(1, EventKind.BUFFER_INSERT, 1, page=9),
            ev(2, EventKind.BUFFER_EVICT, 0, page=9),
        ]
        findings, stats = detect_races(events)
        assert findings == []
        assert stats["mode"] == "local"

    def test_latch_serialises_directory_slots(self):
        # Lawful handover: register -> deregister -> register by another
        # proc; all latched, so neither HB nor state rules fire.
        events = [
            ev(0, EventKind.BUFFER_INSERT, 0, page=3),
            ev(1, EventKind.PAGE_REGISTERED, 0, page=3),
            ev(2, EventKind.BUFFER_EVICT, 0, page=3),
            ev(3, EventKind.PAGE_DEREGISTERED, 0, page=3),
            ev(4, EventKind.BUFFER_INSERT, 1, page=3),
            ev(5, EventKind.PAGE_REGISTERED, 1, page=3),
        ]
        findings, _ = detect_races(events)
        assert [f for f in findings if f.severity is Severity.ERROR] == []


class TestStateRules:
    def test_stale_deregister_detected(self):
        events = [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=7),
            ev(1, EventKind.PAGE_DEREGISTERED, 1, page=7),
        ]
        findings, _ = detect_races(events)
        assert [f.rule for f in findings] == ["race-lost-update"]
        assert "stale" in findings[0].message

    def test_same_owner_reregistration_is_lawful(self):
        events = [
            ev(0, EventKind.PAGE_REGISTERED, 0, page=7),
            ev(1, EventKind.PAGE_REGISTERED, 0, page=7),
        ]
        findings, _ = detect_races(events)
        assert findings == []

    def test_duplicate_reports_are_collapsed(self):
        # The same racing pair on the same page is reported once, not per
        # repeated access.
        events = [
            ev(0, EventKind.REMOTE_FETCH, 2, page=1, owner=3),
            ev(1, EventKind.BUFFER_INSERT, 0, page=9),
            ev(2, EventKind.BUFFER_INSERT, 1, page=9),
            ev(3, EventKind.BUFFER_INSERT, 0, page=9),
            ev(4, EventKind.BUFFER_INSERT, 1, page=9),
        ]
        findings, _ = detect_races(events)
        rules = [f.rule for f in findings]
        assert rules.count("race-write-write") == 1
        assert rules.count("race-double-residency") == 1


class TestExplainMode:
    def test_explain_attaches_both_access_histories(self):
        findings, _ = detect_races(
            FIXTURES / "planted_race.jsonl", explain=True
        )
        ww = next(f for f in findings if f.rule == "race-write-write")
        joined = "\n".join(ww.context)
        assert "access A" in joined and "access B" in joined
        assert "buffer_insert" in joined

    def test_without_explain_context_is_empty(self):
        findings, _ = detect_races(FIXTURES / "planted_race.jsonl")
        assert all(f.context == () for f in findings)


class TestSinkProtocol:
    def test_detector_is_a_trace_sink(self):
        detector = RaceDetector(source="inline")
        for event in (
            ev(0, EventKind.REMOTE_FETCH, 0, page=1, owner=2),
            ev(1, EventKind.BUFFER_INSERT, 0, page=9),
            ev(2, EventKind.BUFFER_INSERT, 1, page=9),
        ):
            detector.handle(event)
        findings = detector.finish()
        assert findings and findings[0].path == "inline"


class TestRealSimulation:
    @pytest.mark.slow
    def test_traced_gsrr_run_has_no_race_errors(self, tmp_path):
        from repro.datagen import build_tree, paper_maps
        from repro.join import (
            GSRR,
            ParallelJoinConfig,
            parallel_spatial_join,
            prepare_trees,
        )
        from repro.trace import TraceConfig

        map_r, map_s = paper_maps(scale=0.02)
        tree_r, tree_s = build_tree(map_r), build_tree(map_s)
        store = prepare_trees(tree_r, tree_s)
        trace_path = tmp_path / "run.jsonl"
        parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=4,
                disks=4,
                total_buffer_pages=96,
                variant=GSRR,
                trace=TraceConfig(
                    keep_events=False,
                    checkers=False,
                    jsonl_path=str(trace_path),
                ),
            ),
            page_store=store,
        )
        findings, stats = detect_races(trace_path)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], [f.render() for f in errors]
        assert stats["mode"] == "global"
        assert stats["events"] > 1000
