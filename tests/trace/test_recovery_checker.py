"""RecoveryAccountingChecker on handcrafted lease/journal event streams."""

from repro.trace import EventKind, RecoveryAccountingChecker, TraceEvent


class Stream:
    def __init__(self):
        self.events: list[TraceEvent] = []
        self.now = 0.0

    def emit(self, kind, proc=-1, **data):
        self.events.append(TraceEvent(len(self.events), self.now, kind, proc, data))
        return self


def verdict_of(events):
    checker = RecoveryAccountingChecker()
    for event in events:
        checker.handle(event)
    return checker.finish()


def lawful_stream():
    """Grant → kill → expire+requeue → regrant → complete, plus a replay."""
    s = Stream()
    s.emit(EventKind.JNL_SCANNED, records=1, torn=0, path="j")
    s.emit(EventKind.JNL_REPLAYED, task=9, rows=2)
    s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
    s.emit(EventKind.LSE_RENEWED, proc=0, task=1, lease=0)
    s.emit(EventKind.FLT_INJECT_TASK_KILL, proc=0, task=1)
    s.emit(EventKind.LSE_EXPIRED, proc=0, task=1, lease=0, split=0, reason="deadline")
    s.emit(EventKind.LSE_REQUEUED, proc=0, task=1)
    s.emit(EventKind.LSE_GRANTED, proc=1, task=1, lease=1, split=0)
    s.emit(EventKind.LSE_COMPLETED, proc=1, task=1, lease=1, split=0, rows=3)
    s.emit(EventKind.RUN_END, candidates=5)
    return s


class TestLawfulStreams:
    def test_kill_expire_requeue_complete_passes(self):
        verdict = verdict_of(lawful_stream().events)
        assert verdict.ok, verdict.violations
        assert verdict.stats["grants"] == 2
        assert verdict.stats["requeues"] == 1
        assert verdict.stats["replayed"] == 1
        assert verdict.stats["task_kills"] == 1

    def test_empty_stream_is_vacuous(self):
        assert verdict_of([]).ok

    def test_split_lease_needs_no_requeue(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        s.emit(EventKind.LSE_GRANTED, proc=1, task=1, lease=1, split=1)
        s.emit(EventKind.LSE_EXPIRED, proc=1, task=1, lease=1, split=1, reason="attempt")
        s.emit(EventKind.LSE_COMPLETED, proc=0, task=1, lease=0, split=0, rows=0)
        assert verdict_of(s.events).ok

    def test_dup_drop_after_commit_is_lawful(self):
        s = lawful_stream()
        # Insert before RUN_END so ordering stays realistic.
        s.events.insert(
            -1,
            TraceEvent(
                len(s.events), 0.0, EventKind.LSE_DUP_DROPPED, 0, {"task": 1}
            ),
        )
        assert verdict_of(s.events).ok


class TestViolations:
    def test_leaked_lease_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("still active" in v for v in verdict.violations)

    def test_renew_of_expired_lease_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        s.emit(EventKind.LSE_EXPIRED, proc=0, task=1, lease=0, split=0, reason="x")
        s.emit(EventKind.LSE_REQUEUED, proc=0, task=1)
        s.emit(EventKind.LSE_RENEWED, proc=0, task=1, lease=0)
        verdict = verdict_of(s.events)
        assert any("renewed while expired" in v for v in verdict.violations)

    def test_double_completion_of_one_task_detected(self):
        s = Stream()
        for lease in (0, 1):
            s.emit(EventKind.LSE_GRANTED, proc=lease, task=1, lease=lease, split=0)
            s.emit(
                EventKind.LSE_COMPLETED, proc=lease, task=1, lease=lease, split=0, rows=1
            )
        verdict = verdict_of(s.events)
        assert any("exactly-once" in v for v in verdict.violations)

    def test_unrequeued_orphan_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        s.emit(EventKind.LSE_EXPIRED, proc=0, task=1, lease=0, split=0, reason="x")
        verdict = verdict_of(s.events)
        assert any("never requeued" in v for v in verdict.violations)

    def test_requeue_without_expiry_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_REQUEUED, proc=0, task=1)
        verdict = verdict_of(s.events)
        assert any("without an expired" in v for v in verdict.violations)

    def test_replay_after_live_completion_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        s.emit(EventKind.LSE_COMPLETED, proc=0, task=1, lease=0, split=0, rows=1)
        s.emit(EventKind.JNL_REPLAYED, task=1, rows=1)
        verdict = verdict_of(s.events)
        assert any("double-counted" in v for v in verdict.violations)

    def test_dup_drop_without_first_copy_detected(self):
        s = Stream()
        s.emit(EventKind.LSE_DUP_DROPPED, proc=0, task=4)
        verdict = verdict_of(s.events)
        assert any("no first copy" in v for v in verdict.violations)

    def test_undetected_kill_flagged(self):
        s = Stream()
        s.emit(EventKind.LSE_GRANTED, proc=0, task=1, lease=0, split=0)
        s.emit(EventKind.FLT_INJECT_TASK_KILL, proc=0, task=1)
        s.emit(EventKind.LSE_COMPLETED, proc=0, task=1, lease=0, split=0, rows=1)
        verdict = verdict_of(s.events)
        assert any("undetected" in v for v in verdict.violations)

    def test_torn_counts_must_reconcile(self):
        s = Stream()
        s.emit(EventKind.JNL_SCANNED, records=0, torn=2, path="j")
        s.emit(EventKind.JNL_TORN_DETECTED, bytes=10)
        verdict = verdict_of(s.events)
        assert any("torn" in v for v in verdict.violations)

    def test_run_end_row_mismatch_detected(self):
        s = lawful_stream()
        s.events[-1] = TraceEvent(
            len(s.events), 0.0, EventKind.RUN_END, -1, {"candidates": 99}
        )
        verdict = verdict_of(s.events)
        assert any("rows lost or double-counted" in v for v in verdict.violations)
