"""ShardAccountingChecker on handcrafted SHD_* event streams."""

from repro.trace import (
    EventKind,
    ShardAccountingChecker,
    TraceEvent,
    default_checkers,
    service_checkers,
)


class Stream:
    def __init__(self):
        self.events: list[TraceEvent] = []
        self.now = 0.0

    def emit(self, kind, proc=-1, **data):
        self.events.append(
            TraceEvent(len(self.events), self.now, kind, proc, data)
        )
        self.now += 0.001
        return self


def verdict_of(events):
    checker = ShardAccountingChecker()
    for event in events:
        checker.handle(event)
    return checker.finish()


def topology(s):
    """Two shards for tree 'a': shard 0 owns x ∈ [0,50], shard 1 x ∈ [50,100]."""
    s.emit(EventKind.SHD_SHARD_UP, shard=0, tree="a", objects=10,
           xl=0.0, yl=0.0, xu=50.0, yu=100.0)
    s.emit(EventKind.SHD_SHARD_UP, shard=1, tree="a", objects=10,
           xl=50.0, yl=0.0, xu=100.0, yu=100.0)
    return s


def topology_join(s):
    topology(s)
    s.emit(EventKind.SHD_SHARD_UP, shard=0, tree="b", objects=5,
           xl=0.0, yl=0.0, xu=50.0, yu=100.0)
    s.emit(EventKind.SHD_SHARD_UP, shard=1, tree="b", objects=5,
           xl=50.0, yl=0.0, xu=100.0, yu=100.0)
    return s


class TestCleanStreams:
    def test_window_fanout_settles(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=2,
               shards="0,1", tree="a", xl=40.0, yl=10.0, xu=60.0, yu=20.0)
        for shard in (0, 1):
            s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=shard,
                   replica=0, attempt=0, op="windows")
            s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=shard,
                   replica=0, attempt=0, rows=3)
        s.emit(EventKind.SHD_MERGED, req=1, cls="window", rows=5, parts=6,
               duplicates=1)
        verdict = verdict_of(s.events)
        assert verdict.ok, verdict.violations
        assert verdict.stats["requests_routed"] == 1
        assert verdict.stats["subrequests"] == 2
        assert verdict.stats["completions"] == 2

    def test_knn_with_lawful_skip(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=2, cls="knn", fanout=2,
               shards="0,1", tree="a", x=10.0, y=50.0, k=2)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=2, shard=0, replica=0,
               attempt=0, op="knn")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=2, shard=0, replica=0,
               attempt=0, rows=2)
        s.emit(EventKind.SHD_SHARD_SKIPPED, req=2, shard=1, mindist=40.0,
               kth=5.0)
        s.emit(EventKind.SHD_MERGED, req=2, cls="knn", rows=2, parts=2,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert verdict.ok, verdict.violations
        assert verdict.stats["knn_skips"] == 1

    def test_failover_then_success(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=3, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=3, shard=0, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_FAILOVER, req=3, shard=0, replica=0,
               next_replica=1, attempt=0, error="WorkerCrash")
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=3, shard=0, replica=1,
               attempt=1, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=3, shard=0, replica=1,
               attempt=1, rows=1)
        s.emit(EventKind.SHD_MERGED, req=3, cls="window", rows=1, parts=1,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert verdict.ok, verdict.violations
        assert verdict.stats["failovers"] == 1

    def test_join_disjoint_merge(self):
        s = topology_join(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=4, cls="join", fanout=2,
               shards="0,1", tree_r="a", tree_s="b")
        for shard in (0, 1):
            s.emit(EventKind.SHD_SUBREQUEST_SENT, req=4, shard=shard,
                   replica=0, attempt=0, op="shard_join")
            s.emit(EventKind.SHD_SUBREQUEST_DONE, req=4, shard=shard,
                   replica=0, attempt=0, rows=4)
        s.emit(EventKind.SHD_MERGED, req=4, cls="join", rows=8, parts=8,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert verdict.ok, verdict.violations

    def test_no_shard_events_is_vacuous(self):
        verdict = verdict_of([])
        assert verdict.ok
        assert verdict.stats["requests_routed"] == 0


class TestViolations:
    def test_fanout_narrower_than_geometry(self):
        # window spans both content boxes but only shard 0 is routed
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=40.0, yl=10.0, xu=60.0, yu=20.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=1)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert "geometry overlaps" in verdict.violations[0]

    def test_fanout_wider_than_geometry(self):
        # window sits entirely inside shard 0 yet shard 1 is routed too
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=2,
               shards="0,1", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        for shard in (0, 1):
            s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=shard,
                   replica=0, attempt=0, op="windows")
            s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=shard,
                   replica=0, attempt=0, rows=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok

    def test_send_outside_routed_set(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=1, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=1, replica=0,
               attempt=0, rows=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("outside its routed set" in v for v in verdict.violations)

    def test_double_done_merges_rows_twice(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=2)
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=2)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("completed twice" in v for v in verdict.violations)

    def test_unsettled_subrequest_at_end(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="windows")
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("never settled" in v for v in verdict.violations)

    def test_equal_distance_skip_is_unlawful(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="knn", fanout=2,
               shards="0,1", tree="a", x=10.0, y=50.0, k=1)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="knn")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=1)
        s.emit(EventKind.SHD_SHARD_SKIPPED, req=1, shard=1, mindist=5.0,
               kth=5.0)  # tie — must have been queried
        s.emit(EventKind.SHD_MERGED, req=1, cls="knn", rows=1, parts=1,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("strictly above" in v for v in verdict.violations)

    def test_join_with_duplicates(self):
        s = topology_join(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="join", fanout=2,
               shards="0,1", tree_r="a", tree_s="b")
        for shard in (0, 1):
            s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=shard,
                   replica=0, attempt=0, op="shard_join")
            s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=shard,
                   replica=0, attempt=0, rows=3)
        s.emit(EventKind.SHD_MERGED, req=1, cls="join", rows=5, parts=6,
               duplicates=1)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("reference-point" in v for v in verdict.violations)

    def test_join_rows_not_conserved(self):
        s = topology_join(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="join", fanout=2,
               shards="0,1", tree_r="a", tree_s="b")
        for shard in (0, 1):
            s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=shard,
                   replica=0, attempt=0, op="shard_join")
            s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=shard,
                   replica=0, attempt=0, rows=3)
        s.emit(EventKind.SHD_MERGED, req=1, cls="join", rows=5, parts=6,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("rows lost or invented" in v for v in verdict.violations)

    def test_knn_candidate_neither_queried_nor_skipped(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="knn", fanout=2,
               shards="0,1", tree="a", x=10.0, y=50.0, k=1)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="knn")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=1)
        # shard 1 silently ignored: no SENT, no SKIPPED
        s.emit(EventKind.SHD_MERGED, req=1, cls="knn", rows=1, parts=1,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("explicitly skipped" in v for v in verdict.violations)

    def test_window_merge_inventing_rows(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=2)
        s.emit(EventKind.SHD_MERGED, req=1, cls="window", rows=3, parts=2,
               duplicates=0)
        verdict = verdict_of(s.events)
        assert not verdict.ok

    def test_failed_after_done(self):
        s = topology(Stream())
        s.emit(EventKind.SHD_REQUEST_ROUTED, req=1, cls="window", fanout=1,
               shards="0", tree="a", xl=1.0, yl=1.0, xu=2.0, yu=2.0)
        s.emit(EventKind.SHD_SUBREQUEST_SENT, req=1, shard=0, replica=0,
               attempt=0, op="windows")
        s.emit(EventKind.SHD_SUBREQUEST_DONE, req=1, shard=0, replica=0,
               attempt=0, rows=1)
        s.emit(EventKind.SHD_SUBREQUEST_FAILED, req=1, shard=0, attempts=1,
               error="late")
        verdict = verdict_of(s.events)
        assert not verdict.ok
        assert any("failed after completing" in v for v in verdict.violations)


class TestWiring:
    def test_rides_in_both_checker_sets(self):
        assert any(
            isinstance(c, ShardAccountingChecker) for c in default_checkers()
        )
        assert any(
            isinstance(c, ShardAccountingChecker) for c in service_checkers()
        )
