"""Golden tests for the text timeline renderer."""

from repro.trace import EventKind, TraceEvent, render_timeline, steal_timeline
from repro.trace.timeline import format_event

EVENTS = [
    TraceEvent(0, 0.0, EventKind.RUN_START, -1, {"processors": 2}),
    TraceEvent(1, 0.0, EventKind.PAIR_ENQUEUED, 0, {"level": 2, "r": 3, "s": 9}),
    TraceEvent(2, 1.5, EventKind.BUFFER_HIT, 0, {"page": 7, "source": "lru"}),
    TraceEvent(3, 2.0, EventKind.STEAL_REQUESTED, 1),
    TraceEvent(
        4, 2.0, EventKind.STEAL_TAKE, 0, {"level": 2, "r": 3, "s": 9, "thief": 1}
    ),
    TraceEvent(
        5, 2.25, EventKind.STEAL_GRANTED, 1, {"victim": 0, "level": 2, "count": 1}
    ),
    TraceEvent(6, 3.0, EventKind.RUN_END, -1, {"candidates": 17}),
]


class TestFormatEvent:
    def test_golden_line_with_payload(self):
        line = format_event(EVENTS[2])
        assert line == (
            "    1.500000  P0   buffer_hit       page=7 source=lru"
        )

    def test_golden_line_machine_global(self):
        line = format_event(EVENTS[0])
        assert line == "    0.000000  --   run_start        processors=2"

    def test_golden_line_no_payload(self):
        line = format_event(EVENTS[3])
        assert line == "    2.000000  P1   steal_requested"

    def test_float_payload_compact(self):
        event = TraceEvent(9, 0.5, EventKind.DISK_COMPLETE, 2, {"start": 0.25})
        assert format_event(event).endswith("start=0.25")


class TestRenderTimeline:
    def test_full_golden_output(self):
        expected = "\n".join(
            [
                "    0.000000  --   run_start        processors=2",
                "    0.000000  P0   pair_enqueued    level=2 r=3 s=9",
                "    1.500000  P0   buffer_hit       page=7 source=lru",
                "    2.000000  P1   steal_requested",
                "    2.000000  P0   steal_take       level=2 r=3 s=9 thief=1",
                "    2.250000  P1   steal_granted    victim=0 level=2 count=1",
                "    3.000000  --   run_end          candidates=17",
            ]
        )
        assert render_timeline(EVENTS) == expected

    def test_kind_filter(self):
        out = render_timeline(EVENTS, kinds=[EventKind.BUFFER_HIT])
        assert out.splitlines() == [
            "    1.500000  P0   buffer_hit       page=7 source=lru"
        ]

    def test_proc_filter(self):
        out = render_timeline(EVENTS, procs=[1])
        assert [line.split()[1] for line in out.splitlines()] == ["P1", "P1"]

    def test_time_window(self):
        out = render_timeline(EVENTS, start=1.0, end=2.0)
        assert len(out.splitlines()) == 3  # t=1.5 and the two t=2.0 events

    def test_limit_reports_suppressed(self):
        out = render_timeline(EVENTS, limit=2)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[-1] == "... 5 more event(s) suppressed"

    def test_empty_stream(self):
        assert render_timeline([]) == ""


class TestStealTimeline:
    def test_only_reassignment_events(self):
        out = steal_timeline(EVENTS)
        kinds = [line.split()[2] for line in out.splitlines()]
        assert kinds == ["steal_requested", "steal_take", "steal_granted"]

    def test_composes_with_filters(self):
        out = steal_timeline(EVENTS, procs=[1], limit=1)
        lines = out.splitlines()
        assert lines[0].split()[2] == "steal_requested"
        assert lines[-1] == "... 1 more event(s) suppressed"
