"""Unit tests for the event bus: tracer stamping, sinks, JSONL round-trip."""

import io

from repro.trace import (
    NULL_TRACER,
    EventKind,
    JSONLSink,
    ListSink,
    TraceEvent,
    Tracer,
    read_jsonl,
)
from repro.trace.sinks import TraceSink


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTracer:
    def test_emit_stamps_monotone_seq_and_clock(self):
        clock = FakeClock()
        sink = ListSink()
        tracer = Tracer(clock=clock, sinks=[sink])
        tracer.emit(EventKind.RUN_START, processors=4)
        clock.now = 1.25
        tracer.emit(EventKind.BUFFER_HIT, proc=2, page=7, source="lru")
        tracer.emit(EventKind.RUN_END)
        assert [e.seq for e in sink.events] == [0, 1, 2]
        assert [e.time for e in sink.events] == [0.0, 1.25, 1.25]
        assert tracer.events_emitted == 3
        hit = sink.events[1]
        assert hit.kind is EventKind.BUFFER_HIT
        assert hit.proc == 2
        assert hit.data == {"page": 7, "source": "lru"}

    def test_fans_out_to_every_sink(self):
        a, b = ListSink(), ListSink()
        tracer = Tracer(sinks=[a, b])
        tracer.emit(EventKind.RUN_START)
        assert len(a) == len(b) == 1
        assert a.events == b.events

    def test_close_closes_sinks(self):
        closed = []

        class Closeable:
            def handle(self, event):
                pass

            def close(self):
                closed.append(True)

        tracer = Tracer(sinks=[Closeable(), ListSink()])
        tracer.close()
        assert closed == [True]

    def test_sinks_satisfy_protocol(self):
        assert isinstance(ListSink(), TraceSink)
        assert isinstance(JSONLSink(io.StringIO()), TraceSink)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(EventKind.RUN_START, processors=8)
        assert NULL_TRACER.events_emitted == 0
        assert NULL_TRACER.sinks == []

    def test_guarded_site_never_builds_an_event(self):
        # The instrumentation idiom: the emit call is never even reached.
        if NULL_TRACER.enabled:  # pragma: no cover - must not trigger
            raise AssertionError("null tracer claims to be enabled")


class TestJSONLRoundTrip:
    def test_path_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path)
        tracer = Tracer(sinks=[sink])
        tracer.emit(EventKind.RUN_START, processors=2, variant="lsr")
        tracer.emit(EventKind.DISK_COMPLETE, proc=1, page=9, disk=1, start=0.5)
        tracer.close()
        assert sink.written == 2
        replayed = read_jsonl(path)
        assert len(replayed) == 2
        assert replayed[0].kind is EventKind.RUN_START
        assert replayed[0].data == {"processors": 2, "variant": "lsr"}
        assert replayed[1] == TraceEvent(
            1, 0.0, EventKind.DISK_COMPLETE, 1, {"page": 9, "disk": 1, "start": 0.5}
        )

    def test_stream_target_left_open(self):
        stream = io.StringIO()
        sink = JSONLSink(stream)
        sink.handle(TraceEvent(0, 0.0, EventKind.RUN_START))
        sink.close()
        assert not stream.closed  # sink does not own the stream
        lines = stream.getvalue().splitlines()
        assert read_jsonl(lines) == [TraceEvent(0, 0.0, EventKind.RUN_START)]

    def test_blank_lines_ignored(self):
        event = TraceEvent(4, 2.5, EventKind.STEAL_DENIED, 3)
        import json

        lines = ["", json.dumps(event.to_json_dict()), "   ", ""]
        assert read_jsonl(lines) == [event]


class TestTraceEvent:
    def test_json_dict_round_trip(self):
        event = TraceEvent(
            12, 3.5, EventKind.STEAL_TAKE, 0, {"r": 1, "s": 2, "thief": 3}
        )
        assert TraceEvent.from_json_dict(event.to_json_dict()) == event

    def test_defaults(self):
        raw = {"seq": 0, "time": 0.0, "kind": "run_end"}
        event = TraceEvent.from_json_dict(raw)
        assert event.proc == -1
        assert event.data == {}
