"""Unit tests for the invariant checkers on handcrafted event streams."""

import pytest

from repro.trace import (
    BufferCoherenceChecker,
    ClockMonotonicityChecker,
    DiskAccountingChecker,
    EventKind,
    StealSoundnessChecker,
    TaskConservationChecker,
    TraceEvent,
    default_checkers,
    run_checkers,
)


class Stream:
    """Build event lists with automatic seq numbers and a settable clock."""

    def __init__(self):
        self.events: list[TraceEvent] = []
        self.now = 0.0

    def emit(self, kind, proc=-1, **data):
        self.events.append(TraceEvent(len(self.events), self.now, kind, proc, data))
        return self


def verdict_of(checker, events):
    for event in events:
        checker.handle(event)
    return checker.finish()


class TestTaskConservation:
    def lawful(self):
        s = Stream()
        s.emit(EventKind.TASK_CREATED, r=1, s=2)
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=2, r=1, s=2)
        s.emit(EventKind.PAIR_DEQUEUED, proc=0, level=2, r=1, s=2)
        s.emit(EventKind.EXEC_START, proc=0, level=2, r=1, s=2)
        s.emit(EventKind.EXEC_END, proc=0, level=2, r=1, s=2)
        return s

    def test_lawful_stream_passes(self):
        verdict = verdict_of(TaskConservationChecker(), self.lawful().events)
        assert verdict.ok
        assert verdict.stats["pairs_created"] == 1
        assert verdict.stats["pairs_executed"] == 1
        assert verdict.stats["tasks"] == 1

    def test_double_execution_detected(self):
        s = self.lawful()
        s.emit(EventKind.PAIR_ENQUEUED, proc=1, level=2, r=1, s=2)
        s.emit(EventKind.PAIR_DEQUEUED, proc=1, level=2, r=1, s=2)
        s.emit(EventKind.EXEC_START, proc=1, level=2, r=1, s=2)
        s.emit(EventKind.EXEC_END, proc=1, level=2, r=1, s=2)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert not verdict.ok
        assert any("executed 2 times" in v for v in verdict.violations)
        assert any("duplicated work" in v for v in verdict.violations)

    def test_steal_transit_is_lawful(self):
        s = Stream()
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=1, r=5, s=6)
        s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=5, s=6, thief=3)
        s.emit(EventKind.PAIR_ENQUEUED, proc=3, level=1, r=5, s=6)
        s.emit(EventKind.PAIR_DEQUEUED, proc=3, level=1, r=5, s=6)
        s.emit(EventKind.EXEC_START, proc=3, level=1, r=5, s=6)
        s.emit(EventKind.EXEC_END, proc=3, level=1, r=5, s=6)
        assert verdict_of(TaskConservationChecker(), s.events).ok

    def test_stolen_pair_arriving_elsewhere_detected(self):
        s = Stream()
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=1, r=5, s=6)
        s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=5, s=6, thief=3)
        s.emit(EventKind.PAIR_ENQUEUED, proc=2, level=1, r=5, s=6)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert any("taken for P3" in v for v in verdict.violations)

    def test_unfinished_pair_detected_at_end(self):
        s = Stream()
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=1, r=7, s=8)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert not verdict.ok
        assert any("never finished" in v for v in verdict.violations)

    def test_unexecuted_task_detected_at_end(self):
        s = Stream()
        s.emit(EventKind.TASK_CREATED, r=9, s=10)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert any("expected 1" in v for v in verdict.violations)

    def test_execute_without_dequeue_detected(self):
        s = Stream()
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=1, r=1, s=1)
        s.emit(EventKind.EXEC_START, proc=0, level=1, r=1, s=1)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert any("expected state (dequeued" in v for v in verdict.violations)


class TestStealSoundness:
    def start(self, level="all", task_level=2):
        s = Stream()
        s.emit(EventKind.RUN_START, reassign_level=level, task_level=task_level)
        return s

    def test_lawful_steal_passes(self):
        s = self.start()
        for r in (1, 2):
            s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=r, s=r, thief=1)
        s.emit(EventKind.STEAL_GRANTED, proc=1, victim=0, level=1, count=2)
        for r in (1, 2):
            s.emit(EventKind.PAIR_ENQUEUED, proc=1, level=1, r=r, s=r)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert verdict.ok
        assert verdict.stats == {"steals": 1, "pairs_moved": 2}

    def test_steal_with_policy_none_detected(self):
        s = self.start(level="none")
        s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=1, s=1, thief=1)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert any("disabled" in v for v in verdict.violations)

    def test_root_policy_wrong_level_detected(self):
        s = self.start(level="root", task_level=2)
        s.emit(EventKind.STEAL_TAKE, proc=0, level=0, r=1, s=1, thief=1)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert any("only allows the task level" in v for v in verdict.violations)

    def test_self_steal_detected(self):
        s = self.start()
        s.emit(EventKind.STEAL_TAKE, proc=2, level=1, r=1, s=1, thief=2)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert any("from itself" in v for v in verdict.violations)

    def test_grant_count_mismatch_detected(self):
        s = self.start()
        s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=1, s=1, thief=1)
        s.emit(EventKind.STEAL_GRANTED, proc=1, victim=0, level=1, count=2)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert any("reports 2 pairs, but 1 were taken" in v for v in verdict.violations)

    def test_pair_lost_in_transit_detected_at_end(self):
        s = self.start()
        s.emit(EventKind.STEAL_TAKE, proc=0, level=1, r=1, s=1, thief=1)
        s.emit(EventKind.STEAL_GRANTED, proc=1, victim=0, level=1, count=1)
        verdict = verdict_of(StealSoundnessChecker(), s.events)
        assert any("never arrived" in v for v in verdict.violations)


class TestBufferCoherence:
    def test_lawful_traffic_passes(self):
        s = Stream()
        s.emit(EventKind.BUFFER_INSERT, proc=0, page=5)
        s.emit(EventKind.BUFFER_HIT, proc=0, page=5, source="lru")
        s.emit(EventKind.PAGE_REGISTERED, proc=0, page=5)
        s.emit(EventKind.REMOTE_FETCH, proc=1, page=5, owner=0)
        s.emit(EventKind.PAGE_DEREGISTERED, proc=0, page=5)
        s.emit(EventKind.BUFFER_EVICT, proc=0, page=5)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert verdict.ok
        assert verdict.stats["lru_hits"] == 1
        assert verdict.stats["remote_fetches"] == 1
        assert verdict.stats["registered_at_end"] == 0

    def test_phantom_lru_hit_detected(self):
        s = Stream()
        s.emit(EventKind.BUFFER_HIT, proc=0, page=9, source="lru")
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("not resident" in v for v in verdict.violations)

    def test_path_hits_not_residency_checked(self):
        # Path-buffer hits live outside the LRU; no residency obligation.
        s = Stream()
        s.emit(EventKind.BUFFER_HIT, proc=0, page=9, source="path")
        assert verdict_of(BufferCoherenceChecker(), s.events).ok

    def test_phantom_evict_detected(self):
        s = Stream()
        s.emit(EventKind.BUFFER_EVICT, proc=0, page=9)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("never held" in v for v in verdict.violations)

    def test_remote_fetch_from_wrong_owner_detected(self):
        s = Stream()
        s.emit(EventKind.PAGE_REGISTERED, proc=0, page=4)
        s.emit(EventKind.REMOTE_FETCH, proc=2, page=4, owner=1)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("directory registers P0" in v for v in verdict.violations)

    def test_remote_fetch_from_self_detected(self):
        s = Stream()
        s.emit(EventKind.PAGE_REGISTERED, proc=1, page=4)
        s.emit(EventKind.REMOTE_FETCH, proc=1, page=4, owner=1)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("from itself" in v for v in verdict.violations)

    def test_conflicting_registration_detected(self):
        s = Stream()
        s.emit(EventKind.PAGE_REGISTERED, proc=0, page=4)
        s.emit(EventKind.PAGE_REGISTERED, proc=1, page=4)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("still registered to P0" in v for v in verdict.violations)

    def test_foreign_deregistration_detected(self):
        s = Stream()
        s.emit(EventKind.PAGE_REGISTERED, proc=0, page=4)
        s.emit(EventKind.PAGE_DEREGISTERED, proc=1, page=4)
        verdict = verdict_of(BufferCoherenceChecker(), s.events)
        assert any("does not own" in v for v in verdict.violations)


class TestDiskAccounting:
    def test_lawful_requests_pass(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=4)
        s.emit(EventKind.DISK_ENQUEUE, proc=0, page=8, disk=0)
        s.now = 0.0125
        s.emit(EventKind.DISK_COMPLETE, proc=0, page=8, disk=0, start=0.0)
        s.emit(EventKind.DISK_ENQUEUE, proc=1, page=4, disk=0)
        s.now = 0.025
        s.emit(EventKind.DISK_COMPLETE, proc=1, page=4, disk=0, start=0.0125)
        verdict = verdict_of(DiskAccountingChecker(), s.events)
        assert verdict.ok
        assert verdict.stats["disk_reads"] == 2

    def test_wrong_disk_detected(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=4)
        s.emit(EventKind.DISK_ENQUEUE, proc=0, page=9, disk=0)
        verdict = verdict_of(DiskAccountingChecker(), s.events)
        assert any("expected 1" in v for v in verdict.violations)

    def test_completion_without_enqueue_detected(self):
        s = Stream()
        s.emit(EventKind.DISK_COMPLETE, proc=0, page=8, disk=0, start=0.0)
        verdict = verdict_of(DiskAccountingChecker(), s.events)
        assert any("without enqueue" in v for v in verdict.violations)

    def test_overlapping_service_detected(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=4)
        s.emit(EventKind.DISK_ENQUEUE, proc=0, page=8, disk=0)
        s.emit(EventKind.DISK_ENQUEUE, proc=1, page=4, disk=0)
        s.now = 0.0125
        s.emit(EventKind.DISK_COMPLETE, proc=0, page=8, disk=0, start=0.0)
        s.now = 0.015
        # Second request started before the first finished.
        s.emit(EventKind.DISK_COMPLETE, proc=1, page=4, disk=0, start=0.01)
        verdict = verdict_of(DiskAccountingChecker(), s.events)
        assert any("while busy until" in v for v in verdict.violations)

    def test_unfinished_request_detected_at_end(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=4)
        s.emit(EventKind.DISK_ENQUEUE, proc=0, page=8, disk=0)
        verdict = verdict_of(DiskAccountingChecker(), s.events)
        assert any("never completed" in v for v in verdict.violations)


class TestClockMonotonicity:
    def test_forward_time_passes(self):
        s = Stream()
        s.emit(EventKind.RUN_START)
        s.now = 1.0
        s.emit(EventKind.EXEC_START, proc=0, r=1, s=1)
        s.now = 2.0
        s.emit(EventKind.EXEC_START, proc=1, r=2, s=2)
        verdict = verdict_of(ClockMonotonicityChecker(), s.events)
        assert verdict.ok
        assert verdict.stats["processors_seen"] == 2

    def test_backwards_time_detected(self):
        events = [
            TraceEvent(0, 1.0, EventKind.RUN_START),
            TraceEvent(1, 0.5, EventKind.RUN_END),
        ]
        verdict = verdict_of(ClockMonotonicityChecker(), events)
        assert any("ran backwards" in v for v in verdict.violations)

    def test_non_monotone_seq_detected(self):
        events = [
            TraceEvent(5, 0.0, EventKind.RUN_START),
            TraceEvent(5, 0.0, EventKind.RUN_END),
        ]
        verdict = verdict_of(ClockMonotonicityChecker(), events)
        assert any("sequence number" in v for v in verdict.violations)


class TestCheckerPlumbing:
    def test_default_checkers_are_the_standard_ones(self):
        names = [checker.name for checker in default_checkers()]
        assert names == [
            "task-conservation",
            "steal-soundness",
            "buffer-coherence",
            "disk-accounting",
            "clock-monotonicity",
            "resilience-accounting",
            "recovery-accounting",
            "shard-accounting",
            "protocol:circuit-breaker",
            "protocol:lease",
            "protocol:journal",
            "protocol:shard-settlement",
            "protocol:buffer-directory",
        ]

    def test_run_checkers_replays_everything(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=2, reassign_level="all", task_level=1)
        s.emit(EventKind.RUN_END)
        verdicts = run_checkers(s.events)
        assert len(verdicts) == 13
        assert all(v.ok for v in verdicts)

    def test_violation_storage_is_capped(self):
        from repro.trace.checkers import MAX_STORED_VIOLATIONS

        checker = ClockMonotonicityChecker()
        events = [
            TraceEvent(0, float(MAX_STORED_VIOLATIONS + 10 - i), EventKind.RUN_START)
            for i in range(MAX_STORED_VIOLATIONS + 10)
        ]
        verdict = verdict_of(checker, events)
        assert verdict.violation_count >= MAX_STORED_VIOLATIONS
        assert len(verdict.violations) == MAX_STORED_VIOLATIONS

    def test_verdict_summary_mentions_counts(self):
        s = Stream()
        s.emit(EventKind.PAIR_ENQUEUED, proc=0, level=1, r=1, s=1)
        verdict = verdict_of(TaskConservationChecker(), s.events)
        assert verdict.checker in verdict.summary()
        assert "violation" in verdict.summary()


class TestResilienceAccounting:
    """The FLT_*/SUP_* two-ledger reconciliation on handcrafted streams."""

    def make(self):
        from repro.trace import ResilienceAccountingChecker

        return ResilienceAccountingChecker()

    def test_healthy_stream_is_vacuously_ok(self):
        s = Stream()
        s.emit(EventKind.RUN_START, disks=1, reassign_level="none", task_level=0)
        s.emit(EventKind.RUN_END)
        assert verdict_of(self.make(), s.events).ok

    def test_fault_closed_by_ok_reconciles(self):
        s = Stream()
        s.emit(EventKind.FLT_INJECT_SLOW_IO, call=3, sleep_s=0.01)
        s.emit(EventKind.SUP_CALL_OK, call=3)
        verdict = verdict_of(self.make(), s.events)
        assert verdict.ok
        assert verdict.stats["injected_calls"] == 1
        assert verdict.stats["calls_ok"] == 1

    def test_unclosed_fault_is_a_silent_loss(self):
        s = Stream()
        s.emit(EventKind.FLT_INJECT_CRASH, call=5)
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("silently lost" in v for v in verdict.violations)

    def test_failed_then_retried_reconciles(self):
        s = Stream()
        s.emit(EventKind.FLT_INJECT_CRASH, call=1)
        s.emit(EventKind.SUP_CALL_FAILED, call=1, op="knn", error="deadline")
        s.emit(EventKind.SUP_CALL_RETRY, call=1, attempt=1, delay_s=0.02,
               remaining_s=1.5)
        s.emit(EventKind.SUP_CALL_OK, call=2)
        assert verdict_of(self.make(), s.events).ok

    def test_unanswered_failure_violates(self):
        s = Stream()
        s.emit(EventKind.SUP_CALL_FAILED, call=4, op="knn", error="deadline")
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("never answered" in v for v in verdict.violations)

    def test_retry_without_open_failure_violates(self):
        s = Stream()
        s.emit(EventKind.SUP_CALL_RETRY, call=9, attempt=1, delay_s=0.02)
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("without an open" in v for v in verdict.violations)

    def test_retry_past_deadline_budget_violates(self):
        s = Stream()
        s.emit(EventKind.SUP_CALL_FAILED, call=2, op="windows", error="x")
        s.emit(EventKind.SUP_CALL_RETRY, call=2, attempt=1, delay_s=0.02,
               remaining_s=-0.5)
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("deadline budget" in v for v in verdict.violations)

    def test_giveup_must_surface(self):
        s = Stream()
        s.emit(EventKind.SUP_CALL_FAILED, call=2, op="knn", error="deadline")
        s.emit(EventKind.SUP_CALL_GIVEUP, call=2, attempts=3, error="deadline")
        # No SVC_REQUEST_ERROR/TIMEOUT/CANCELLED: the give-up vanished.
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("give-up" in v.lower() for v in verdict.violations)

    def test_giveup_surfaced_as_error_reconciles(self):
        s = Stream()
        s.emit(EventKind.SUP_CALL_FAILED, call=2, op="knn", error="deadline")
        s.emit(EventKind.SUP_CALL_GIVEUP, call=2, attempts=3, error="deadline")
        s.emit(EventKind.SVC_REQUEST_ERROR, cls="knn")
        assert verdict_of(self.make(), s.events).ok

    def test_corruption_must_be_detected_and_repaired(self):
        s = Stream()
        s.emit(EventKind.FLT_INJECT_CORRUPT, proc=0, page=12, bit=5)
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        repaired = Stream()
        repaired.emit(EventKind.FLT_INJECT_CORRUPT, proc=0, page=12, bit=5)
        repaired.emit(EventKind.SUP_PAGE_CORRUPT_DETECTED, proc=0, page=12)
        repaired.emit(EventKind.SUP_PAGE_REPAIRED, proc=0, page=12)
        assert verdict_of(self.make(), repaired.events).ok

    def test_repair_of_the_wrong_page_violates(self):
        s = Stream()
        s.emit(EventKind.FLT_INJECT_CORRUPT, proc=0, page=12, bit=5)
        s.emit(EventKind.SUP_PAGE_CORRUPT_DETECTED, proc=0, page=12)
        s.emit(EventKind.SUP_PAGE_REPAIRED, proc=0, page=99)
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("page 12" in v for v in verdict.violations)

    def test_lawful_breaker_cycle_passes(self):
        s = Stream()
        s.emit(EventKind.SUP_BREAKER_OPEN, cls="window")
        s.emit(EventKind.SUP_BREAKER_HALF_OPEN, cls="window")
        s.emit(EventKind.SUP_BREAKER_OPEN, cls="window")
        s.emit(EventKind.SUP_BREAKER_HALF_OPEN, cls="window")
        s.emit(EventKind.SUP_BREAKER_CLOSED, cls="window")
        verdict = verdict_of(self.make(), s.events)
        assert verdict.ok
        assert verdict.stats["breaker_transitions"] == 5

    def test_unlawful_breaker_edge_violates(self):
        s = Stream()
        s.emit(EventKind.SUP_BREAKER_CLOSED, cls="window")  # closed->closed?
        s.emit(EventKind.SUP_BREAKER_HALF_OPEN, cls="knn")  # closed->half-open
        verdict = verdict_of(self.make(), s.events)
        assert not verdict.ok
        assert any("lawful" in v for v in verdict.violations)

    def test_breaker_classes_tracked_independently(self):
        s = Stream()
        s.emit(EventKind.SUP_BREAKER_OPEN, cls="window")
        s.emit(EventKind.SUP_BREAKER_OPEN, cls="knn")
        assert verdict_of(self.make(), s.events).ok

    def test_disk_seam_slow_io_is_not_call_keyed(self):
        # Page-keyed SLOW_IO (no "call" field) needs no SUP_CALL closure.
        s = Stream()
        s.emit(EventKind.FLT_INJECT_SLOW_IO, proc=1, page=7, factor=4.0)
        verdict = verdict_of(self.make(), s.events)
        assert verdict.ok
        assert verdict.stats["injected_calls"] == 0
