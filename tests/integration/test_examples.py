"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; each is executed in a fresh
interpreter and must exit cleanly.  The multiprocessing example is
excluded here (it forks a pool and takes ~30 s); its machinery is covered
by tests/join/test_mp.py.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "county_join.py",
    "assignment_walkthrough.py",
    "load_balancing.py",
    "forests_in_cities.py",
    "shared_nothing_cluster.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # every example reports something


def test_examples_all_covered():
    # No example may silently rot: every script is either in the fast list
    # or explicitly known as the long-running multiprocessing demo.
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(FAST_EXAMPLES) | {"multiprocessing_speedup.py"}
