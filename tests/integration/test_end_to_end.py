"""Integration tests: the full pipeline from map generation to join results.

These cross-module tests exercise the exact composition the benchmark
harness uses and pin down the paper's qualitative findings at small scale.
"""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.join import (
    GD,
    GSRR,
    LSR,
    ExactRefinement,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    VictimChoice,
    count_root_tasks,
    multiprocessing_join,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.rtree import tree_stats


@pytest.fixture(scope="module")
def pipeline():
    m1, m2 = paper_maps(scale=0.05)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return m1, m2, tree_r, tree_s, page_store, expected


def join(pipeline, **kwargs):
    _, _, tree_r, tree_s, page_store, _ = pipeline
    return parallel_spatial_join(
        tree_r, tree_s, ParallelJoinConfig(**kwargs), page_store=page_store
    )


class TestPipelineConsistency:
    def test_all_backends_agree(self, pipeline):
        m1, m2, tree_r, tree_s, page_store, expected = pipeline
        sim = join(pipeline, processors=8, disks=8, total_buffer_pages=400)
        mp_pairs = multiprocessing_join(tree_r, tree_s, processes=2)
        assert sim.pair_set() == expected
        assert set(mp_pairs) == expected

    def test_symmetry_of_join(self, pipeline):
        _, _, tree_r, tree_s, _, expected = pipeline
        flipped = sequential_join(tree_s, tree_r).pair_set()
        assert {(s, r) for r, s in flipped} == expected

    def test_tree_shapes_sane(self, pipeline):
        _, _, tree_r, tree_s, _, _ = pipeline
        for tree in (tree_r, tree_s):
            stats = tree_stats(tree)
            assert stats.height in (2, 3)
            assert 0.55 <= stats.avg_leaf_fill <= 0.9
        assert count_root_tasks(tree_r, tree_s) > 8


class TestPaperFindingsAtSmallScale:
    """Qualitative results of sections 4.3-4.5, asserted as inequalities."""

    def test_gd_at_most_lsr_disk_accesses_with_large_buffer(self, pipeline):
        root = ReassignmentPolicy(level=ReassignLevel.ROOT)
        lsr = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                   variant=LSR, reassignment=root)
        gd = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                  variant=GD, reassignment=root)
        assert gd.disk_accesses <= lsr.disk_accesses

    def test_global_buffer_profits_more_from_larger_buffers(self, pipeline):
        root = ReassignmentPolicy(level=ReassignLevel.ROOT)

        def accesses(variant, pages):
            return join(
                pipeline, processors=8, disks=8, total_buffer_pages=pages,
                variant=variant, reassignment=root,
            ).disk_accesses

        lsr_gain = accesses(LSR, 100) - accesses(LSR, 800)
        gd_gain = accesses(GD, 100) - accesses(GD, 800)
        assert gd_gain >= lsr_gain * 0.8  # at least comparable, usually more

    def test_reassignment_improves_lsr_response_time(self, pipeline):
        none = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                    variant=LSR,
                    reassignment=ReassignmentPolicy(level=ReassignLevel.NONE))
        all_levels = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                          variant=LSR,
                          reassignment=ReassignmentPolicy(level=ReassignLevel.ALL))
        assert all_levels.response_time < none.response_time

    def test_speedup_with_d_equals_n(self, pipeline):
        policy = ReassignmentPolicy(level=ReassignLevel.ALL)
        single = join(pipeline, processors=1, disks=1, total_buffer_pages=50,
                      variant=GD, reassignment=policy)
        eight = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                     variant=GD, reassignment=policy)
        speedup = eight.speedup_against(single)
        assert speedup > 5.0

    def test_one_disk_saturates(self, pipeline):
        policy = ReassignmentPolicy(level=ReassignLevel.ALL)
        single = join(pipeline, processors=1, disks=1, total_buffer_pages=50,
                      variant=GD, reassignment=policy)
        n8_d1 = join(pipeline, processors=8, disks=1, total_buffer_pages=400,
                     variant=GD, reassignment=policy)
        n8_d8 = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                     variant=GD, reassignment=policy)
        # One disk helps far less than eight disks.
        assert n8_d8.response_time < n8_d1.response_time
        assert n8_d1.speedup_against(single) < 6.0

    def test_victim_choice_matters_little_for_global_buffer(self, pipeline):
        max_load = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                        variant=GD,
                        reassignment=ReassignmentPolicy(level=ReassignLevel.ALL))
        arbitrary = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                         variant=GD,
                         reassignment=ReassignmentPolicy(
                             level=ReassignLevel.ALL,
                             victim=VictimChoice.ARBITRARY))
        # Section 4.4: "there is no difference" for the global buffer —
        # allow a modest tolerance for schedule noise.
        ratio = arbitrary.disk_accesses / max(1, max_load.disk_accesses)
        assert 0.85 <= ratio <= 1.15

    def test_total_work_stable_across_processor_counts(self, pipeline):
        # Section 4.5: total run time of all tasks barely grows with n.
        policy = ReassignmentPolicy(level=ReassignLevel.ALL)
        single = join(pipeline, processors=1, disks=1, total_buffer_pages=50,
                      variant=GD, reassignment=policy)
        many = join(pipeline, processors=8, disks=8, total_buffer_pages=400,
                    variant=GD, reassignment=policy)
        assert many.times.total_run_time < single.times.total_run_time * 1.5


class TestExactRefinementPipeline:
    def test_answers_subset_of_candidates(self):
        m1, m2 = paper_maps(scale=0.01, include_geometry=True)
        tree_r, tree_s = build_tree(m1), build_tree(m2)
        candidates = sequential_join(tree_r, tree_s)
        geo1 = {o.oid: o.points for o in m1.objects}
        geo2 = {o.oid: o.points for o in m2.objects}
        refinement = ExactRefinement(geo1, geo2)
        answers = refinement.filter_answers(candidates.pairs)
        assert 0 < len(answers) <= candidates.candidates
        assert set(answers) <= candidates.pair_set()
        # The filter step produces false hits on real data; the refinement
        # must drop at least some of them.
        assert refinement.answers < refinement.tests
