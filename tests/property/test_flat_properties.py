"""Property-based tests (hypothesis) for the flat packed backend.

Two families: **structural** — a packed build satisfies the layout
invariants (level offsets partition the arrays, parent MBRs exactly
cover their child slices, every box is reachable from the root) for any
item set and fan-out; **differential** — the vectorized window, k-NN and
join kernels agree with scalar brute force over the raw items, which
never saw the packing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.rtree.flat import FlatRTree
from repro.rtree.query import oid_order_key

from tests.flat_oracle import brute_join, brute_knn, brute_window

coords = st.floats(
    min_value=-500, max_value=500, allow_nan=False, allow_infinity=False
)
sizes = st.floats(min_value=0, max_value=50, allow_nan=False)
node_sizes = st.integers(min_value=2, max_value=9)


@st.composite
def rect_st(draw):
    xl = draw(coords)
    yl = draw(coords)
    return Rect(xl, yl, xl + draw(sizes), yl + draw(sizes))


rect_lists = st.lists(rect_st(), max_size=120)


def build(rects, node_size):
    return FlatRTree.build(list(enumerate(rects)), node_size=node_size)


class TestStructuralInvariants:
    @given(rect_lists, node_sizes)
    @settings(max_examples=60, deadline=None)
    def test_packed_layout_invariants(self, rects, node_size):
        tree = build(rects, node_size)
        tree.validate()  # level counts, offset partition, exact MBR cover
        if rects:
            # The offsets strictly increase and end at the array length.
            offsets = tree.level_offsets.tolist()
            assert offsets[0] == 0 and offsets[-1] == len(tree.xmin)
            assert all(a < b for a, b in zip(offsets, offsets[1:]))
            # Child MBR containment, top-down from the single root.
            root = tree.mbr()
            for i in range(tree.size):
                entry = tree.entry(i)
                assert root.xl <= entry.xl and entry.xu <= root.xu
                assert root.yl <= entry.yl and entry.yu <= root.yu

    @given(rect_lists, node_sizes)
    @settings(max_examples=40, deadline=None)
    def test_every_box_reachable_by_its_own_rect(self, rects, node_size):
        tree = build(rects, node_size)
        for oid, rect in enumerate(rects):
            found = {e.oid for e in tree.window_entries(rect)}
            assert oid in found

    @given(rect_lists, node_sizes)
    @settings(max_examples=40, deadline=None)
    def test_oids_are_a_permutation(self, rects, node_size):
        tree = build(rects, node_size)
        assert sorted(tree.oids) == list(range(len(rects)))


class TestDifferentialKernels:
    @given(rect_lists, rect_st(), node_sizes)
    @settings(max_examples=60, deadline=None)
    def test_window_kernel_equals_brute_force(self, rects, window, node_size):
        tree = build(rects, node_size)
        items = list(enumerate(rects))
        got = {e.oid for e in tree.window_entries(window)}
        assert got == brute_window(items, window)

    @given(rect_lists, coords, coords, st.integers(min_value=1, max_value=200), node_sizes)
    @settings(max_examples=60, deadline=None)
    def test_knn_equals_brute_force_ordered(self, rects, x, y, k, node_size):
        tree = build(rects, node_size)
        items = list(enumerate(rects))
        got = [(d, e.oid) for d, e in tree.nearest(x, y, k)]
        expected = brute_knn(items, x, y, k)
        assert len(got) == min(k, len(rects))  # k > dataset truncates
        assert [oid for _, oid in got] == [oid for _, oid in expected]
        for (gd, _), (ed, _) in zip(got, expected):
            assert abs(gd - ed) <= 1e-9 * max(1.0, ed)

    @given(rect_lists, rect_lists, node_sizes)
    @settings(max_examples=40, deadline=None)
    def test_join_kernel_equals_brute_force(self, rects_r, rects_s, node_size):
        from repro.join.flat import flat_join_pairs

        tree_r = build(rects_r, node_size)
        tree_s = build(rects_s, node_size)
        pairs = flat_join_pairs(tree_r, tree_s)
        expected = brute_join(list(enumerate(rects_r)), list(enumerate(rects_s)))
        assert set(pairs) == expected
        assert len(pairs) == len(expected)

    @given(coords, coords, st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_empty_tree_answers_empty(self, x, y, k):
        tree = FlatRTree.build([])
        assert tree.nearest(x, y, k) == []
        assert tree.window_entries(Rect(x, y, x + 1, y + 1)) == []

    @given(st.lists(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_oid_order_key_total_and_consistent(self, oids):
        keys = sorted(oid_order_key(o) for o in oids)  # must not raise
        assert len(keys) == len(oids)
