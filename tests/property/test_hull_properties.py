"""Property-based tests for convex hulls and the SAT intersection test."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon
from repro.geometry.hull import ConvexPolygon, convex_hull

# Integer-valued coordinates: hull predicates use exact float arithmetic
# there, so the properties hold exactly (arbitrary floats fail only by
# epsilon-scale near-degeneracies, which is inherent to the algorithm).
coords = st.integers(min_value=-100, max_value=100).map(float)
point_st = st.tuples(coords, coords)
points_st = st.lists(point_st, min_size=1, max_size=30)


class TestHullProperties:
    @given(points_st)
    @settings(max_examples=100, deadline=None)
    def test_hull_vertices_are_input_points(self, points):
        hull = convex_hull(points)
        assert set(hull) <= set(points)

    @given(points_st)
    @settings(max_examples=100, deadline=None)
    def test_hull_contains_every_input_point(self, points):
        hull = convex_hull(points)
        polygon = ConvexPolygon(hull)
        for x, y in points:
            assert polygon.contains_point(x, y)

    @given(points_st)
    @settings(max_examples=60, deadline=None)
    def test_hull_is_convex(self, points):
        hull = convex_hull(points)
        if len(hull) < 3:
            return
        n = len(hull)
        for i in range(n):
            ox, oy = hull[i]
            ax, ay = hull[(i + 1) % n]
            bx, by = hull[(i + 2) % n]
            cross = (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)
            assert cross > 0  # strictly convex (collinear points dropped)

    @given(points_st)
    @settings(max_examples=60, deadline=None)
    def test_hull_idempotent(self, points):
        hull = convex_hull(points)
        assert convex_hull(hull) == sorted_ring(hull)


def sorted_ring(hull):
    # convex_hull output starts at the lexicographically smallest point;
    # re-hulling a hull returns the same ring with the same start.
    return convex_hull(hull)


class TestSATProperties:
    @given(
        st.lists(point_st, min_size=3, max_size=12),
        st.lists(point_st, min_size=3, max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_sat_matches_boundary_based_test(self, points_a, points_b):
        hull_a = convex_hull(points_a)
        hull_b = convex_hull(points_b)
        if len(hull_a) < 3 or len(hull_b) < 3:
            return
        sat = ConvexPolygon(hull_a).intersects(ConvexPolygon(hull_b))
        reference = Polygon(hull_a).intersects_polygon(Polygon(hull_b))
        assert sat == reference

    @given(
        st.lists(point_st, min_size=1, max_size=12),
        st.lists(point_st, min_size=1, max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_sat_symmetric(self, points_a, points_b):
        a = ConvexPolygon.of(points_a)
        b = ConvexPolygon.of(points_b)
        assert a.intersects(b) == b.intersects(a)

    @given(st.lists(point_st, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_self_intersection(self, points):
        polygon = ConvexPolygon.of(points)
        assert polygon.intersects(polygon)
