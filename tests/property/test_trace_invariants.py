"""Property tests: the trace invariants hold on randomized configurations.

Whatever the dataset, processor count, buffer size, variant or
reassignment policy, a traced run must satisfy task conservation and
steal soundness (and the other standard checkers); and replaying the
recorded stream through fresh checkers must agree with the online
verdicts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    VictimChoice,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.rtree import str_bulk_load
from repro.trace import TraceConfig, run_checkers


def build_pair(rects_r, rects_s):
    tree_r = str_bulk_load(list(enumerate(rects_r)), dir_capacity=6, data_capacity=6)
    tree_s = str_bulk_load(list(enumerate(rects_s)), dir_capacity=6, data_capacity=6)
    return tree_r, tree_s


def random_rects(seeded, count=80):
    return [
        Rect(x, y, x + seeded.uniform(0, 5), y + seeded.uniform(0, 5))
        for x, y in (
            (seeded.uniform(0, 60), seeded.uniform(0, 60)) for _ in range(count)
        )
    ]


@pytest.mark.slow
class TestTraceInvariantProperties:
    @given(
        st.integers(1, 6),          # processors
        st.integers(1, 4),          # disks
        st.integers(4, 60),         # buffer pages
        st.sampled_from([LSR, GSRR, GD]),
        st.sampled_from(list(ReassignLevel)),
        st.sampled_from(list(VictimChoice)),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants_hold_for_any_configuration(
        self, processors, disks, pages, variant, level, victim, rng
    ):
        seeded = random.Random(rng.randint(0, 10**6))
        tree_r, tree_s = build_pair(random_rects(seeded), random_rects(seeded))
        if tree_r.height != tree_s.height:
            return  # parallel task creation requires equal heights
        page_store = prepare_trees(tree_r, tree_s)
        expected = sequential_join(tree_r, tree_s).pair_set()
        result = parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=processors,
                disks=disks,
                total_buffer_pages=pages,
                variant=variant,
                reassignment=ReassignmentPolicy(level=level, victim=victim),
                refinement=None,
                trace=TraceConfig(),
            ),
            page_store=page_store,
        )
        assert result.pair_set() == expected
        trace = result.trace
        # The headline invariants the paper's measurements rely on:
        assert trace.verdict("task-conservation").ok, trace.summary()
        assert trace.verdict("steal-soundness").ok, trace.summary()
        # ... and everything else.
        trace.verify()

    @given(
        st.integers(2, 6),
        st.sampled_from([LSR, GSRR, GD]),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=10, deadline=None)
    def test_replay_agrees_with_online_checkers(self, processors, variant, rng):
        seeded = random.Random(rng.randint(0, 10**6))
        tree_r, tree_s = build_pair(
            random_rects(seeded, 60), random_rects(seeded, 60)
        )
        if tree_r.height != tree_s.height:
            return
        page_store = prepare_trees(tree_r, tree_s)
        result = parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=processors,
                disks=2,
                total_buffer_pages=24,
                variant=variant,
                refinement=None,
                trace=TraceConfig(),
            ),
            page_store=page_store,
        )
        online = {v.checker: (v.ok, v.violation_count) for v in result.trace.verdicts}
        replayed = {
            v.checker: (v.ok, v.violation_count)
            for v in run_checkers(result.trace.events)
        }
        assert replayed == online
        assert all(ok for ok, _ in replayed.values())
