"""Property-based crash/resume testing of the recoverable simulated join.

Hypothesis draws a crash schedule (which processors die, and at which of
their task starts), an assignment variant and a reassignment policy; the
property is the recovery layer's whole contract: the crashed run's trace
is lawful, and the crashed-then-resumed result is the sequential oracle's
multiset — every pair exactly once, no matter where the kills landed.
"""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.recovery import RecoveryConfig
from repro.trace import TraceConfig

PROCS = 3
SCALE = 0.01

_WORKLOAD = None


def workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        m1, m2 = paper_maps(scale=SCALE)
        tree_r, tree_s = build_tree(m1), build_tree(m2)
        page_store = prepare_trees(tree_r, tree_s)
        expected = sorted(sequential_join(tree_r, tree_s).pair_set())
        _WORKLOAD = (tree_r, tree_s, page_store, expected)
    return _WORKLOAD


def run(journal_path, variant, policy, faults=None):
    tree_r, tree_s, page_store, _ = workload()
    config = ParallelJoinConfig(
        processors=PROCS,
        variant=variant,
        reassignment=policy,
        faults=faults,
        trace=TraceConfig(),
        recovery=RecoveryConfig(
            lease_s=0.05,
            heartbeat_s=0.01,
            sweep_s=0.01,
            journal_path=journal_path,
        ),
    )
    return parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


def multiset(result):
    pairs = [p for proc in result.pairs_by_processor for p in proc]
    pairs.extend(result.replayed_pairs)
    return sorted(pairs)


def assert_lawful(result):
    result.trace.verify()
    verdict = result.trace.verdict("recovery-accounting")
    assert verdict.ok, verdict.violations


kill_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=PROCS - 1),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=0,
    max_size=PROCS,
    unique=True,
)
variants = st.sampled_from([LSR, GSRR, GD])
policies = st.sampled_from([ReassignLevel.NONE, ReassignLevel.ALL])


class TestCrashResumeProperty:
    @given(
        kills=kill_schedules,
        variant=variants,
        level=policies,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_crashed_then_resumed_equals_sequential_oracle(
        self, kills, variant, level, seed
    ):
        expected = workload()[3]
        policy = ReassignmentPolicy(level=level)
        faults = FaultPlan(seed=seed, kill_processor_at_event=tuple(kills))
        with tempfile.TemporaryDirectory() as tmp:
            journal = f"{tmp}/join.jnl"
            crashed = run(journal, variant, policy, faults=faults)
            assert_lawful(crashed)
            final = crashed
            if not crashed.recovery["complete"]:
                resumed = run(journal, variant, policy)
                assert_lawful(resumed)
                assert resumed.recovery["complete"]
                assert (
                    resumed.recovery["tasks_replayed"]
                    == crashed.recovery["tasks_committed"]
                )
                final = resumed
            assert multiset(final) == expected

    @given(
        variant=variants,
        seed=st.integers(min_value=0, max_value=10_000),
        kill_p=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=8, deadline=None)
    def test_probabilistic_kills_converge_under_repeated_resume(
        self, variant, seed, kill_p
    ):
        # task_kill_p may take out every processor (lawfully incomplete);
        # a fault-free resume must then finish from the journal alone.
        expected = workload()[3]
        policy = ReassignmentPolicy(level=ReassignLevel.NONE)
        faults = FaultPlan(seed=seed, task_kill_p=kill_p)
        with tempfile.TemporaryDirectory() as tmp:
            journal = f"{tmp}/join.jnl"
            result = run(journal, variant, policy, faults=faults)
            assert_lawful(result)
            if not result.recovery["complete"]:
                result = run(journal, variant, policy)
                assert_lawful(result)
                assert result.recovery["complete"]
            assert multiset(result) == expected
