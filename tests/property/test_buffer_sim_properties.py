"""Property-based tests for the LRU buffer and the simulation resources."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import LRUBuffer
from repro.sim import Environment, Resource


class ReferenceLRU:
    """Obviously-correct LRU model to check the real buffer against."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.pages = OrderedDict()

    def touch(self, page):
        if page in self.pages:
            self.pages.move_to_end(page)
            return True
        return False

    def insert(self, page):
        if page in self.pages:
            self.pages.move_to_end(page)
            return None
        evicted = None
        if len(self.pages) >= self.capacity:
            evicted, _ = self.pages.popitem(last=False)
        self.pages[page] = None
        return evicted


operations = st.lists(
    st.tuples(st.sampled_from(["touch", "insert", "remove"]), st.integers(0, 20)),
    max_size=200,
)


class TestLRUAgainstModel:
    @given(st.integers(1, 8), operations)
    @settings(max_examples=80, deadline=None)
    def test_behaves_like_reference(self, capacity, ops):
        real = LRUBuffer(capacity)
        model = ReferenceLRU(capacity)
        for op, page in ops:
            if op == "touch":
                assert real.touch(page) == model.touch(page)
            elif op == "insert":
                assert real.insert(page) == model.insert(page)
            else:
                real.remove(page)
                model.pages.pop(page, None)
            assert list(real.pages()) == list(model.pages)
            assert len(real) <= capacity


class TestResourceProperties:
    @given(
        st.integers(1, 4),
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),  # arrival
                st.floats(min_value=0.1, max_value=10, allow_nan=False),  # service
            ),
            min_size=1,
            max_size=25,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded_and_work_conserved(self, capacity, jobs):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        active = [0]
        max_active = [0]
        spans = []

        def job(arrival, service):
            yield env.timeout(arrival)
            yield resource.acquire()
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            start = env.now
            try:
                yield env.timeout(service)
            finally:
                active[0] -= 1
                resource.release()
            spans.append((start, env.now))

        for arrival, service in jobs:
            env.process(job(arrival, service))
        total = env.run()

        assert max_active[0] <= capacity
        assert len(spans) == len(jobs)  # every job ran to completion
        # Work conservation: the makespan is at least total work / capacity
        # and at most last arrival + total work (single server worst case).
        work = sum(service for _, service in jobs)
        last_arrival = max(arrival for arrival, _ in jobs)
        assert total >= work / capacity - 1e-9
        assert total <= last_arrival + work + 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=5, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_server_serialises_exactly(self, services):
        env = Environment()
        resource = Resource(env, capacity=1)

        def job(service):
            yield resource.acquire()
            try:
                yield env.timeout(service)
            finally:
                resource.release()

        for service in services:
            env.process(job(service))
        assert env.run() == sum(services)
