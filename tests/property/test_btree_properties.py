"""Model-based property tests for the B+-tree (z-order substrate)."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zorder import BPlusTree

keys = st.integers(min_value=0, max_value=500)


class TestBPlusTreeAgainstSortedList:
    @given(st.integers(4, 16), st.lists(keys, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_items_match_reference(self, order, inserted):
        tree = BPlusTree(order=order)
        reference = []
        for key in inserted:
            tree.insert(key, key * 2)
            bisect.insort(reference, key)
        assert [k for k, _ in tree.items()] == reference
        assert all(v == k * 2 for k, v in tree.items())
        assert len(tree) == len(reference)
        tree.validate()

    @given(
        st.integers(4, 12),
        st.lists(keys, max_size=200),
        keys,
        keys,
    )
    @settings(max_examples=60, deadline=None)
    def test_range_scan_matches_reference(self, order, inserted, a, b):
        low, high = min(a, b), max(a, b)
        tree = BPlusTree(order=order)
        for key in inserted:
            tree.insert(key, None)
        got = [k for k, _ in tree.range(low, high)]
        want = sorted(k for k in inserted if low <= k <= high)
        assert got == want

    @given(st.lists(keys, min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_duplicates_all_retrievable(self, inserted):
        tree = BPlusTree(order=5)
        for index, key in enumerate(inserted):
            tree.insert(key, index)
        for key in set(inserted):
            values = [v for _, v in tree.range(key, key)]
            want = [i for i, k in enumerate(inserted) if k == key]
            assert sorted(values) == want

    @given(st.lists(keys, max_size=250))
    @settings(max_examples=30, deadline=None)
    def test_height_logarithmic(self, inserted):
        tree = BPlusTree(order=8)
        for key in inserted:
            tree.insert(key, None)
        # order-8 tree: each level multiplies capacity by >= 4.
        assert tree.height <= 2 + max(0, len(inserted)).bit_length()
