"""Property-based tests for the join layer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.join import (
    GD,
    GSRR,
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    create_tasks,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
    static_range_assignment,
    static_round_robin_assignment,
)
from repro.rtree import str_bulk_load

coords = st.floats(min_value=0, max_value=100, allow_nan=False)
sizes = st.floats(min_value=0, max_value=8, allow_nan=False)


@st.composite
def rect_st(draw):
    xl = draw(coords)
    yl = draw(coords)
    return Rect(xl, yl, xl + draw(sizes), yl + draw(sizes))


def build_pair(rects_r, rects_s):
    tree_r = str_bulk_load(list(enumerate(rects_r)), dir_capacity=6, data_capacity=6)
    tree_s = str_bulk_load(list(enumerate(rects_s)), dir_capacity=6, data_capacity=6)
    return tree_r, tree_s


class TestSequentialJoinProperties:
    @given(
        st.lists(rect_st(), min_size=1, max_size=60),
        st.lists(rect_st(), min_size=1, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, rects_r, rects_s):
        tree_r, tree_s = build_pair(rects_r, rects_s)
        got = sequential_join(tree_r, tree_s).pair_set()
        want = {
            (i, j)
            for i, r in enumerate(rects_r)
            for j, s in enumerate(rects_s)
            if r.intersects(s)
        }
        assert got == want

    @given(
        st.lists(rect_st(), min_size=1, max_size=40),
        st.lists(rect_st(), min_size=1, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_tasks_cover_join_exactly(self, rects_r, rects_s):
        # The union of per-task joins equals the full join, without
        # duplicates (each node pair has a unique ancestor task).
        from repro.join.mp import join_subtrees

        tree_r, tree_s = build_pair(rects_r, rects_s)
        if tree_r.height != tree_s.height:
            return  # parallel task creation requires equal heights
        prepare_trees(tree_r, tree_s)
        tasks = create_tasks(tree_r, tree_s)
        pairs = []
        for task in tasks:
            pairs.extend(join_subtrees(task.node_r, task.node_s))
        assert len(pairs) == len(set(pairs))
        assert set(pairs) == sequential_join(tree_r, tree_s).pair_set()


class TestAssignmentProperties:
    @given(st.integers(0, 50), st.integers(1, 12))
    def test_partition_properties(self, m, n):
        tasks = list(range(m))  # assignment is agnostic to task type
        for assign in (static_range_assignment, static_round_robin_assignment):
            workloads = assign(tasks, n)
            assert len(workloads) == n
            flat = [t for w in workloads for t in w]
            assert sorted(flat) == tasks
            sizes = [len(w) for w in workloads]
            assert max(sizes) - min(sizes) <= 1


class TestParallelJoinProperty:
    @given(
        st.integers(1, 6),          # processors
        st.integers(1, 4),          # disks
        st.integers(4, 60),         # buffer pages
        st.sampled_from([LSR, GSRR, GD]),
        st.sampled_from(list(ReassignLevel)),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_configuration_matches_sequential(
        self, processors, disks, pages, variant, level, rng
    ):
        seeded = random.Random(rng.randint(0, 10**6))
        rects_r = [
            Rect(x, y, x + seeded.uniform(0, 5), y + seeded.uniform(0, 5))
            for x, y in (
                (seeded.uniform(0, 60), seeded.uniform(0, 60)) for _ in range(80)
            )
        ]
        rects_s = [
            Rect(x, y, x + seeded.uniform(0, 5), y + seeded.uniform(0, 5))
            for x, y in (
                (seeded.uniform(0, 60), seeded.uniform(0, 60)) for _ in range(80)
            )
        ]
        tree_r, tree_s = build_pair(rects_r, rects_s)
        if tree_r.height != tree_s.height:
            return
        page_store = prepare_trees(tree_r, tree_s)
        expected = sequential_join(tree_r, tree_s).pair_set()
        result = parallel_spatial_join(
            tree_r,
            tree_s,
            ParallelJoinConfig(
                processors=processors,
                disks=disks,
                total_buffer_pages=pages,
                variant=variant,
                reassignment=ReassignmentPolicy(level=level),
                refinement=None,
            ),
            page_store=page_store,
        )
        assert result.pair_set() == expected
        total = sum(len(p) for p in result.pairs_by_processor)
        assert total == len(expected)
