"""Property-based tests (hypothesis) for the R*-tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.rtree import RStarTree, str_bulk_load

coords = st.floats(min_value=-500, max_value=500, allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0, max_value=50, allow_nan=False)


@st.composite
def rect_st(draw):
    xl = draw(coords)
    yl = draw(coords)
    return Rect(xl, yl, xl + draw(sizes), yl + draw(sizes))


rect_lists = st.lists(rect_st(), max_size=120)


class TestInsertProperties:
    @given(rect_lists)
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_inserts(self, rects):
        tree = RStarTree(dir_capacity=5, data_capacity=5)
        for i, r in enumerate(rects):
            tree.insert(i, r)
        tree.validate()

    @given(rect_lists, rect_st())
    @settings(max_examples=40, deadline=None)
    def test_window_query_equals_brute_force(self, rects, window):
        tree = RStarTree(dir_capacity=5, data_capacity=5)
        for i, r in enumerate(rects):
            tree.insert(i, r)
        got = sorted(e.oid for e in tree.search(window))
        want = sorted(i for i, r in enumerate(rects) if r.intersects(window))
        assert got == want

    @given(rect_lists)
    @settings(max_examples=30, deadline=None)
    def test_every_object_findable_by_its_own_rect(self, rects):
        tree = RStarTree(dir_capacity=5, data_capacity=5)
        for i, r in enumerate(rects):
            tree.insert(i, r)
        for i, r in enumerate(rects):
            assert i in {e.oid for e in tree.search(r)}


class TestDeleteProperties:
    @given(rect_lists, st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_delete_subset_preserves_rest(self, rects, rng):
        tree = RStarTree(dir_capacity=5, data_capacity=5)
        for i, r in enumerate(rects):
            tree.insert(i, r)
        doomed = {i for i in range(len(rects)) if rng.random() < 0.5}
        for i in sorted(doomed):
            assert tree.delete(i, rects[i])
        tree.validate()
        everything = Rect(-2000, -2000, 2000, 2000)
        remaining = {e.oid for e in tree.search(everything)}
        assert remaining == set(range(len(rects))) - doomed


class TestBulkLoadProperties:
    @given(rect_lists)
    @settings(max_examples=40, deadline=None)
    def test_bulk_invariants_and_completeness(self, rects):
        tree = str_bulk_load(
            list(enumerate(rects)), dir_capacity=5, data_capacity=5
        )
        tree.validate()
        everything = Rect(-2000, -2000, 2000, 2000)
        assert {e.oid for e in tree.search(everything)} == set(range(len(rects)))

    @given(rect_lists, rect_st())
    @settings(max_examples=30, deadline=None)
    def test_bulk_and_dynamic_answer_queries_identically(self, rects, window):
        bulk = str_bulk_load(list(enumerate(rects)), dir_capacity=5, data_capacity=5)
        dynamic = RStarTree(dir_capacity=5, data_capacity=5)
        for i, r in enumerate(rects):
            dynamic.insert(i, r)
        assert sorted(e.oid for e in bulk.search(window)) == sorted(
            e.oid for e in dynamic.search(window)
        )
