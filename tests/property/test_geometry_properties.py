"""Property-based tests (hypothesis) for the geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Rect,
    Segment,
    brute_join_pairs,
    sweep_pairs,
    x_sorted,
)

coords = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
)


@st.composite
def rect_st(draw):
    xl = draw(coords)
    yl = draw(coords)
    w = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    return Rect(xl, yl, xl + w, yl + h)


@st.composite
def segment_st(draw):
    return Segment(draw(coords), draw(coords), draw(coords), draw(coords))


class TestRectProperties:
    @given(rect_st(), rect_st())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rect_st(), rect_st())
    def test_intersection_consistent_with_predicate(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains(inter)
            assert b.contains(inter)

    @given(rect_st(), rect_st())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(rect_st(), rect_st())
    def test_intersection_area_matches_rect(self, a, b):
        inter = a.intersection(b)
        want = inter.area() if inter is not None else 0.0
        assert abs(a.intersection_area(b) - want) < 1e-6

    @given(rect_st(), rect_st())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rect_st(), rect_st())
    def test_overlap_degree_in_unit_interval(self, a, b):
        d = a.overlap_degree(b)
        assert 0.0 <= d <= 1.0 + 1e-9

    @given(rect_st(), rect_st())
    def test_overlap_degree_zero_iff_disjoint_interiorless(self, a, b):
        if not a.intersects(b):
            assert a.overlap_degree(b) == 0.0

    @given(rect_st())
    def test_self_union_identity(self, a):
        assert a.union(a) == a
        assert a.intersection(a) == a

    @given(rect_st(), rect_st())
    def test_min_distance_zero_iff_intersecting(self, a, b):
        if a.intersects(b):
            assert a.min_distance(b) == 0.0
        else:
            assert a.min_distance(b) > 0.0


class TestSegmentProperties:
    @given(segment_st(), segment_st())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(segment_st())
    def test_self_intersects(self, a):
        assert a.intersects(a)

    @given(segment_st(), segment_st())
    def test_intersection_implies_mbr_overlap(self, a, b):
        if a.intersects(b):
            assert a.mbr().intersects(b.mbr())


class TestSweepProperties:
    @given(
        st.lists(rect_st(), max_size=40),
        st.lists(rect_st(), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_sweep_equals_brute_force(self, rs, ss):
        rs = x_sorted(rs)
        ss = x_sorted(ss)
        got = sweep_pairs(rs, ss).pairs
        want = brute_join_pairs(rs, ss)
        # Duplicates are possible (identical rects), so compare multisets
        # of coordinate tuples.
        key = lambda p: (p[0].as_tuple(), p[1].as_tuple())
        assert sorted(map(key, got)) == sorted(map(key, want))

    @given(
        st.lists(rect_st(), max_size=30),
        st.lists(rect_st(), max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_sweep_order_is_nondecreasing_in_sweep_position(self, rs, ss):
        # Pairs are emitted at sweep-line stops; the stop coordinate of a
        # pair is the smaller xl of its two rectangles, and stops move
        # strictly left to right, so that coordinate never decreases.
        rs = x_sorted(rs)
        ss = x_sorted(ss)
        positions = [min(r.xl, s.xl) for r, s in sweep_pairs(rs, ss)]
        assert positions == sorted(positions)
