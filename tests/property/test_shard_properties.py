"""Property-based tests for the shard partitioner and routed queries.

The laws the sharded tier must uphold for *any* dataset:

* every object is owned by exactly one shard (replication adds copies
  only to shards whose cells its MBR overlaps);
* the shard cells tile the fitted data MBR exactly;
* a window's routed shard set equals the brute-force set of shards
  whose regions the window overlaps, and the merged window answer
  equals a brute-force scan — in both partitioning modes;
* sharded kNN equals a brute-force scan, tie order included.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.rtree.query import oid_order_key
from repro.shard.ops import sharded_knn, sharded_window
from repro.shard.partition import Partitioner, build_sharded, partition_items

coords = st.floats(
    min_value=-100.0, max_value=100.0,
    allow_nan=False, allow_infinity=False, width=32,
)
extents = st.floats(
    min_value=0.0, max_value=25.0,
    allow_nan=False, allow_infinity=False, width=32,
)


@st.composite
def rects(draw):
    x = draw(coords)
    y = draw(coords)
    return Rect(x, y, x + draw(extents), y + draw(extents))


@st.composite
def datasets(draw):
    rs = draw(st.lists(rects(), min_size=1, max_size=60))
    return [(oid, rect) for oid, rect in enumerate(rs)]


modes = st.sampled_from(["grid", "zrange"])
shard_counts = st.integers(min_value=1, max_value=7)


class TestPartitionLaws:
    @given(datasets(), shard_counts, modes)
    @settings(max_examples=60, deadline=None)
    def test_every_object_owned_exactly_once(self, items, k, mode):
        pmap = Partitioner(k, mode=mode).fit(items)
        owned, replicated = partition_items(items, pmap)
        seen = sorted(oid for per in owned for oid, _ in per)
        assert seen == [oid for oid, _ in items]
        # replicas appear exactly on the overlapping shards
        by_oid = dict(items)
        for shard, per in enumerate(replicated):
            for oid, _ in per:
                assert shard in pmap.shards_of_rect(by_oid[oid])
        for oid, rect in items:
            copies = sum(
                1 for per in replicated if any(o == oid for o, _ in per)
            )
            assert copies == len(pmap.shards_of_rect(rect))

    @given(datasets(), shard_counts, modes)
    @settings(max_examples=60, deadline=None)
    def test_cells_tile_the_data_mbr(self, items, k, mode):
        pmap = Partitioner(k, mode=mode).fit(items)
        bounds = pmap.bounds()
        cells = [pmap.cell_rect(c) for c in range(pmap.gx * pmap.gy)]
        assert sum(c.area() for c in cells) <= bounds.area() + 1e-6
        assert math.isclose(
            sum(c.area() for c in cells), bounds.area(),
            rel_tol=1e-9, abs_tol=1e-9,
        )
        for cell in cells:
            assert cell.xl >= bounds.xl - 1e-9 and cell.xu <= bounds.xu + 1e-9
            assert cell.yl >= bounds.yl - 1e-9 and cell.yu <= bounds.yu + 1e-9
        # every shard's cells are accounted for exactly once
        assert sorted(
            cell for s in range(k) for cell in pmap.shard_cells(s)
        ) == list(range(pmap.gx * pmap.gy))


class TestRoutedQueryLaws:
    @given(datasets(), shard_counts, modes, rects())
    @settings(max_examples=60, deadline=None)
    def test_window_routing_and_answer_match_brute_force(
        self, items, k, mode, window
    ):
        sharded = build_sharded({"d": items}, k, mode=mode)
        pmap = sharded.pmap
        # the geometric router set == brute-force cell-overlap set for
        # in-bounds windows; clamping makes it a (safe) superset when the
        # window lies outside the fitted data MBR
        brute = {
            shard
            for shard in range(k)
            if any(
                window.intersects(pmap.cell_rect(cell))
                for cell in pmap.shard_cells(shard)
            )
        }
        geometric = set(pmap.shards_of_rect(window))
        if window.intersects(pmap.bounds()):
            assert geometric == brute
        else:
            assert geometric >= brute
        # content routing never drops a shard that holds a match
        routed = set(sharded.routed_shards("d", window))
        _, replicated = partition_items(items, pmap)
        holding = {
            shard
            for shard, per in enumerate(replicated)
            if any(rect.intersects(window) for _, rect in per)
        }
        assert holding <= routed
        got = sharded_window(sharded, "d", window)
        want = tuple(sorted(
            oid for oid, rect in items if rect.intersects(window)
        ))
        assert got == want

    @given(datasets(), shard_counts, modes, coords, coords,
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_knn_matches_brute_force_with_tie_order(
        self, items, shards, mode, x, y, k
    ):
        sharded = build_sharded({"d": items}, shards, mode=mode)
        got = sharded_knn(sharded, "d", x, y, k)

        def dist(rect):
            dx = max(rect.xl - x, 0.0, x - rect.xu)
            dy = max(rect.yl - y, 0.0, y - rect.yu)
            return math.sqrt(dx * dx + dy * dy)

        ranked = sorted(
            ((dist(rect), oid_order_key(oid), oid) for oid, rect in items),
        )
        want = tuple((float(d), oid) for d, _, oid in ranked[:k])
        assert got == want
