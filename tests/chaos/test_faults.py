"""Units for the fault-injection framework itself: plan validation,
seeded determinism, directives, and checksummed page corruption."""

import pytest

from repro.faults import (
    FaultDirective,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    NO_FAULTS,
    apply_directive,
)
from repro.storage.page import PageImage, page_checksum
from repro.trace import EventKind, ListSink, Tracer


class TestFaultPlan:
    def test_no_faults_is_inactive(self):
        assert not NO_FAULTS.active

    def test_any_probability_activates(self):
        assert FaultPlan(worker_crash_p=0.1).active
        assert FaultPlan(worker_hang_p=0.1).active
        assert FaultPlan(slow_io_p=0.1).active
        assert FaultPlan(page_flip_p=0.1).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker_crash_p": -0.1},
            {"worker_crash_p": 1.5},
            {"slow_io_factor": 0.5},
            {"hang_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_rng_streams_are_per_site_and_seeded(self):
        plan = FaultPlan(seed=42, worker_crash_p=0.5)
        # Same seed + site -> identical stream; different site -> different.
        a = [plan.rng_for("worker").random() for _ in range(5)]
        b = [plan.rng_for("worker").random() for _ in range(5)]
        c = [plan.rng_for("io").random() for _ in range(5)]
        assert a == b
        assert a != c

    def test_reseeded(self):
        plan = FaultPlan(seed=1, worker_crash_p=0.3)
        other = plan.reseeded(2)
        assert other.seed == 2
        assert other.worker_crash_p == plan.worker_crash_p


class TestInjectorDeterminism:
    def test_same_seed_same_directives(self):
        plan = FaultPlan(
            seed=7, worker_crash_p=0.2, worker_hang_p=0.2, slow_io_p=0.2
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append(
                [injector.worker_directive(i) for i in range(50)]
            )
        assert runs[0] == runs[1]
        assert any(d is not None for d in runs[0])

    def test_different_seed_different_decisions(self):
        base = FaultPlan(seed=7, worker_crash_p=0.3)
        one = [
            FaultInjector(base).worker_directive(i) for i in range(64)
        ]
        two = [
            FaultInjector(base.reseeded(8)).worker_directive(i)
            for i in range(64)
        ]
        assert one != two

    def test_injections_are_traced_with_call_ids(self):
        sink = ListSink()
        tracer = Tracer(clock=lambda: 0.0, sinks=[sink])
        plan = FaultPlan(seed=3, worker_crash_p=1.0)
        injector = FaultInjector(plan, tracer=tracer)
        injector.worker_directive(17)
        assert injector.crashes == 1
        [event] = sink.events
        assert event.kind is EventKind.FLT_INJECT_CRASH
        assert event.data["call"] == 17

    def test_io_multiplier(self):
        plan = FaultPlan(seed=5, slow_io_p=1.0, slow_io_factor=4.0)
        injector = FaultInjector(plan)
        assert injector.io_multiplier(12) == 4.0
        healthy = FaultInjector(FaultPlan(seed=5))
        assert healthy.io_multiplier(12) == 1.0


class TestDirectives:
    def test_apply_none_is_noop(self):
        apply_directive(None, hard_crash=True)

    def test_soft_crash_raises(self):
        with pytest.raises(InjectedCrash):
            apply_directive(FaultDirective("crash"), hard_crash=False)

    def test_hang_sleeps_briefly(self):
        apply_directive(
            FaultDirective("hang", sleep_s=0.001), hard_crash=False
        )

    def test_directive_is_picklable(self):
        import pickle

        directive = FaultDirective("hang", sleep_s=0.5)
        assert pickle.loads(pickle.dumps(directive)) == directive


class TestPageChecksums:
    def test_checksum_detects_any_single_bit_flip(self):
        payload = bytes(range(64))
        reference = page_checksum(payload)
        for bit in range(0, len(payload) * 8, 37):
            corrupted = bytearray(payload)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            assert page_checksum(bytes(corrupted)) != reference

    def test_page_image_verify(self):
        image = PageImage.build(3, b"spatial join")
        assert image.verify()
        broken = PageImage(3, b"spatial joiN", image.checksum)
        assert not broken.verify()

    def test_corrupt_copy_flips_exactly_one_bit(self):
        plan = FaultPlan(seed=11, page_flip_p=1.0)
        injector = FaultInjector(plan)
        payload = bytes(100)
        corrupted = injector.corrupt_copy(7, payload)
        assert corrupted != payload
        diff = [
            bin(a ^ b).count("1") for a, b in zip(payload, corrupted)
        ]
        assert sum(diff) == 1
        assert injector.corruptions == 1

    def test_corrupt_copy_deterministic(self):
        plan = FaultPlan(seed=11, page_flip_p=0.5)
        payload = bytes(range(200))
        one = [
            FaultInjector(plan).corrupt_copy(i, payload) for i in range(32)
        ]
        two = [
            FaultInjector(plan).corrupt_copy(i, payload) for i in range(32)
        ]
        assert one == two
