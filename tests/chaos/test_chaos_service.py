"""The chaos acceptance invariant for the serving engine.

Under injected worker crashes (p=0.05), hangs (p=0.02) and 4x slowed
I/O, a load of mixed requests must lose nothing: every submitted request
reaches a terminal status, no result is duplicated or wrong, every
injected fault is reconciled by the resilience ledger, and retries stay
inside their deadline budgets.
"""

import asyncio
import random

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.rtree.query import window_query
from repro.service import (
    Engine,
    EngineConfig,
    RetryPolicy,
    Status,
    WindowRequest,
    fork_available,
)
from repro.trace import ListSink, run_checkers, service_checkers

from tests.service.test_engine import random_window

CHAOS_PLAN = FaultPlan(
    seed=1337,
    worker_crash_p=0.05,
    worker_hang_p=0.02,
    hang_s=1.0,
    slow_io_p=0.10,
    slow_io_factor=4.0,
)


@pytest.fixture(scope="module")
def workload():
    map1, map2 = paper_maps(scale=0.01)
    trees = {"map1": build_tree(map1), "map2": build_tree(map2)}
    return trees, map1.region.side


def run_chaos(trees, side, *, workers, requests, plan, timeout=10.0):
    config = EngineConfig(
        workers=workers,
        cache_capacity=0,
        faults=plan,
        seed=7,
        attempt_timeout_s=0.5,
        retry=RetryPolicy(max_attempts=4),
        default_timeout_s=timeout,
        supervisor_interval_s=0.1,
    )
    sink = ListSink()
    rng = random.Random(7)
    reqs = [
        WindowRequest("map1" if i % 2 else "map2",
                      random_window(rng, side), cacheable=False)
        for i in range(requests)
    ]

    async def main():
        async with Engine(trees, config, sinks=[sink]) as engine:
            responses = await asyncio.gather(
                *(engine.submit(r) for r in reqs)
            )
            snapshot = engine.snapshot()
            return responses, snapshot

    responses, snapshot = asyncio.run(main())
    return reqs, responses, snapshot, sink


@pytest.mark.slow
@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestChaosInvariantForked:
    def test_nothing_lost_nothing_duplicated_everything_reconciled(
        self, workload
    ):
        trees, side = workload
        reqs, responses, snapshot, sink = run_chaos(
            trees, side, workers=2, requests=120, plan=CHAOS_PLAN
        )

        # Zero lost: every submitted request reached a terminal response.
        assert len(responses) == len(reqs)
        terminal = {
            Status.OK, Status.ERROR, Status.TIMEOUT,
            Status.REJECTED, Status.SHED,
        }
        assert all(r.status in terminal for r in responses)

        # Zero duplicated / wrong results: one response per request and
        # every successful answer equals the oracle.
        checked = 0
        for request, response in zip(reqs, responses):
            if response.ok and not response.stale:
                want = tuple(
                    sorted(
                        e.oid
                        for e in window_query(
                            trees[request.tree], request.window
                        )
                    )
                )
                assert response.value == want
                checked += 1
        assert checked > 0

        # Chaos actually happened: faults were injected and survived.
        faults = snapshot["faults_injected"]
        assert faults["crashes"] + faults["hangs"] + faults["slow_ios"] > 0

        # Every injected fault reconciled, retries within deadlines,
        # breaker transitions lawful — the full checker battery agrees.
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.name, v.violations) for v in verdicts if not v.ok
        ]

    def test_crashed_workers_are_respawned(self, workload):
        trees, side = workload
        plan = FaultPlan(seed=99, worker_crash_p=0.25)
        reqs, responses, snapshot, sink = run_chaos(
            trees, side, workers=2, requests=60, plan=plan
        )
        assert snapshot["faults_injected"]["crashes"] > 0
        supervisor = snapshot["supervisor"]
        assert supervisor["crashes_detected"] > 0
        assert supervisor["respawns_detected"] > 0
        # Despite the carnage, work still succeeded after retries.
        assert any(r.ok for r in responses)
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.name, v.violations) for v in verdicts if not v.ok
        ]


class TestChaosInvariantThreads:
    """Thread-fallback smoke: injected crashes surface as InjectedCrash
    and ride the same retry/ledger machinery — fast enough for tier 1."""

    def test_thread_pool_survives_injected_crashes(self, workload):
        trees, side = workload
        plan = FaultPlan(seed=5, worker_crash_p=0.15, slow_io_p=0.05,
                         slow_io_factor=2.0, slow_io_base_s=0.001)
        reqs, responses, snapshot, sink = run_chaos(
            trees, side, workers=0, requests=80, plan=plan, timeout=5.0
        )
        assert len(responses) == len(reqs)
        assert all(r.status is not None for r in responses)
        assert snapshot["faults_injected"]["crashes"] > 0
        oks = [r for r in responses if r.ok]
        assert oks, "no request survived injected crashes"
        verdicts = run_checkers(sink.events, service_checkers())
        assert all(v.ok for v in verdicts), [
            (v.name, v.violations) for v in verdicts if not v.ok
        ]

    def test_determinism_same_seed_same_faults(self, workload):
        """Serial submission pins the call order, so one seed replays
        the exact same fault sequence run after run."""
        trees, side = workload
        plan = FaultPlan(seed=21, worker_crash_p=0.2, worker_hang_p=0.1,
                         hang_s=0.01)
        config = EngineConfig(
            workers=0, cache_capacity=0, faults=plan, seed=7,
            retry=RetryPolicy(max_attempts=4), default_timeout_s=5.0,
        )
        rng = random.Random(3)
        windows = [random_window(rng, side) for _ in range(30)]

        async def main():
            async with Engine(trees, config) as engine:
                statuses = []
                for window in windows:
                    response = await engine.submit(
                        WindowRequest("map1", window, cacheable=False)
                    )
                    statuses.append(response.status)
                return statuses, engine.snapshot()["faults_injected"]

        first = asyncio.run(main())
        second = asyncio.run(main())
        assert first == second
