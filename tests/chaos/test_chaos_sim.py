"""Chaos in the simulated parallel join: bit-flipped buffered pages are
detected by the page checksums, repaired from the authoritative images,
and the corruption ledger reconciles — while the join still produces the
exact sequential answer under 4x slowed I/O."""

import pytest

from repro.datagen import build_tree, paper_maps
from repro.faults import FaultPlan
from repro.join import (
    ParallelJoinConfig,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
)
from repro.trace import TraceConfig

SCALE = 0.02


@pytest.fixture(scope="module")
def workload():
    m1, m2 = paper_maps(scale=SCALE)
    tree_r, tree_s = build_tree(m1), build_tree(m2)
    page_store = prepare_trees(tree_r, tree_s)
    expected = sequential_join(tree_r, tree_s).pair_set()
    return tree_r, tree_s, page_store, expected


def run(workload, **kwargs):
    tree_r, tree_s, page_store, _ = workload
    config = ParallelJoinConfig(**kwargs)
    return parallel_spatial_join(tree_r, tree_s, config, page_store=page_store)


class TestPageCorruptionRepair:
    def test_corrupted_pages_are_repaired_and_answers_exact(self, workload):
        result = run(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            faults=FaultPlan(seed=1337, page_flip_p=0.05),
            trace=TraceConfig(),
        )
        assert result.pair_set() == workload[3]
        assert result.metrics["page_repairs"] > 0
        # FLT_INJECT_CORRUPT == SUP_PAGE_CORRUPT_DETECTED ==
        # SUP_PAGE_REPAIRED, per page — the resilience checker proves it.
        assert result.trace is not None
        result.trace.verify()
        assert result.trace.verdict("resilience-accounting").ok

    def test_repairs_match_injected_corruptions(self, workload):
        result = run(
            workload,
            processors=2,
            disks=2,
            total_buffer_pages=80,
            faults=FaultPlan(seed=4, page_flip_p=0.1),
            trace=TraceConfig(),
        )
        stats = result.trace.verdict("resilience-accounting").stats
        assert stats["corruptions"] > 0
        assert stats["repairs"] == stats["corruptions"]
        assert result.metrics["page_repairs"] == stats["repairs"]
        assert result.pair_set() == workload[3]

    def test_inert_plan_changes_nothing(self, workload):
        healthy = run(
            workload, processors=4, disks=4, total_buffer_pages=160
        )
        inert = run(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            faults=FaultPlan(seed=1),
        )
        assert inert.pair_set() == healthy.pair_set()
        assert inert.metrics["page_repairs"] == 0
        assert inert.response_time == healthy.response_time


class TestSlowIO:
    def test_slowed_disks_stretch_makespan_not_answers(self, workload):
        healthy = run(
            workload, processors=4, disks=4, total_buffer_pages=160,
            trace=TraceConfig(),
        )
        slowed = run(
            workload,
            processors=4,
            disks=4,
            total_buffer_pages=160,
            faults=FaultPlan(seed=1337, slow_io_p=0.25, slow_io_factor=4.0),
            trace=TraceConfig(),
        )
        assert slowed.pair_set() == workload[3]
        assert slowed.response_time > healthy.response_time
        slowed.trace.verify()

    def test_combined_chaos_keeps_invariants(self, workload):
        result = run(
            workload,
            processors=6,
            disks=6,
            total_buffer_pages=240,
            faults=FaultPlan(
                seed=1337,
                slow_io_p=0.10,
                slow_io_factor=4.0,
                page_flip_p=0.02,
            ),
            trace=TraceConfig(),
        )
        assert result.pair_set() == workload[3]
        # Full battery: task conservation, buffer sanity, clock
        # monotonicity AND the resilience ledger, all on one trace.
        result.trace.verify()
