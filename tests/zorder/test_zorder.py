"""Tests for the z-order curve, the B+-tree and the [OM 88] join."""

import random

import pytest

from repro.geometry import Rect
from repro.zorder import (
    BPlusTree,
    Quantizer,
    ZRegion,
    decompose,
    interleave,
    zorder_join,
)

UNIT = Rect(0, 0, 1, 1)


class TestInterleave:
    def test_known_values(self):
        assert interleave(0, 0, 4) == 0
        assert interleave(1, 0, 4) == 0b01
        assert interleave(0, 1, 4) == 0b10
        assert interleave(3, 3, 4) == 0b1111
        assert interleave(0b10, 0b01, 4) == 0b0110

    def test_bijective_on_grid(self):
        bits = 4
        codes = {
            interleave(ix, iy, bits)
            for ix in range(1 << bits)
            for iy in range(1 << bits)
        }
        assert len(codes) == 1 << (2 * bits)
        assert min(codes) == 0
        assert max(codes) == (1 << (2 * bits)) - 1

    def test_locality_of_quadrants(self):
        # All cells of the lower-left quadrant come before any cell of the
        # upper-right quadrant.
        bits = 3
        half = 1 << (bits - 1)
        lower_left = max(
            interleave(ix, iy, bits) for ix in range(half) for iy in range(half)
        )
        upper_right = min(
            interleave(ix, iy, bits)
            for ix in range(half, 2 * half)
            for iy in range(half, 2 * half)
        )
        assert lower_left < upper_right


class TestQuantizer:
    def test_cell_of_corners(self):
        q = Quantizer(UNIT, bits=4)
        assert q.cell_of(0, 0) == (0, 0)
        assert q.cell_of(1, 1) == (15, 15)  # clamped to the last cell

    def test_out_of_bounds_clamped(self):
        q = Quantizer(UNIT, bits=4)
        assert q.cell_of(-5, 2) == (0, 15)

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            Quantizer(UNIT, bits=0)

    def test_degenerate_bounds(self):
        q = Quantizer(Rect(1, 1, 1, 1), bits=4)
        assert q.cell_of(1, 1) == (0, 0)


class TestDecompose:
    def cells_of(self, regions):
        cells = set()
        for region in regions:
            cells.update(range(region.lo, region.hi + 1))
        return cells

    def test_full_space_single_region(self):
        q = Quantizer(UNIT, bits=4)
        regions = decompose(UNIT, q, max_regions=4)
        assert len(regions) == 1
        assert regions[0] == ZRegion(0, (1 << 8) - 1, 0)

    def test_coverage_is_conservative(self):
        q = Quantizer(UNIT, bits=5)
        rect = Rect(0.2, 0.3, 0.55, 0.7)
        regions = decompose(rect, q, max_regions=8)
        covered = self.cells_of(regions)
        ix0, iy0, ix1, iy1 = q.grid_rect(rect)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                assert interleave(ix, iy, q.bits) in covered

    def test_regions_disjoint_and_sorted(self):
        q = Quantizer(UNIT, bits=6)
        rect = Rect(0.1, 0.1, 0.8, 0.4)
        regions = decompose(rect, q, max_regions=8)
        for a, b in zip(regions, regions[1:]):
            assert a.hi < b.lo

    def test_more_regions_tighter(self):
        q = Quantizer(UNIT, bits=8)
        rect = Rect(0.3, 0.3, 0.35, 0.35)
        loose = self.cells_of(decompose(rect, q, max_regions=1))
        tight = self.cells_of(decompose(rect, q, max_regions=16))
        assert tight <= loose
        assert len(tight) < len(loose)

    def test_max_regions_validated(self):
        q = Quantizer(UNIT, bits=4)
        with pytest.raises(ValueError):
            decompose(UNIT, q, max_regions=0)

    def test_point_rect(self):
        q = Quantizer(UNIT, bits=6)
        regions = decompose(Rect(0.5, 0.5, 0.5, 0.5), q, max_regions=16)
        assert self.cells_of(regions)  # non-empty cover


class TestBPlusTree:
    def test_order_validated(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        rng = random.Random(1)
        keys = [rng.randint(0, 1000) for _ in range(500)]
        for key in keys:
            tree.insert(key, f"v{key}")
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert len(tree) == 500
        tree.validate()

    def test_duplicates_preserved(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(7, i)
        assert len(list(tree.range(7, 7))) == 50
        tree.validate()

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key * 10)
        got = list(tree.range(30, 40))
        assert got == [(k, k * 10) for k in range(30, 41)]

    def test_range_empty(self):
        tree = BPlusTree(order=4)
        for key in (1, 5, 9):
            tree.insert(key, None)
        assert list(tree.range(6, 8)) == []
        assert list(tree.range(10, 20)) == []

    def test_height_grows(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, None)
        assert tree.height >= 3
        tree.validate()

    def test_bulk_load(self):
        tree = BPlusTree(order=8)
        tree.bulk_load((k, k) for k in range(64))
        assert len(tree) == 64
        tree.validate()


class TestZOrderJoin:
    def random_items(self, n, seed, extent=1.0, size=0.05):
        rng = random.Random(seed)
        out = []
        for i in range(n):
            x = rng.uniform(0, extent * 0.95)
            y = rng.uniform(0, extent * 0.95)
            out.append(
                (i, Rect(x, y, x + rng.uniform(0, size), y + rng.uniform(0, size)))
            )
        return out

    def brute(self, items_r, items_s):
        return {
            (i, j)
            for i, r in items_r
            for j, s in items_s
            if r.intersects(s)
        }

    @pytest.mark.parametrize("max_regions", [1, 4, 16])
    def test_matches_brute_force(self, max_regions):
        items_r = self.random_items(150, seed=1)
        items_s = self.random_items(150, seed=2)
        pairs, stats = zorder_join(
            items_r, items_s, UNIT, bits=10, max_regions=max_regions
        )
        assert set(pairs) == self.brute(items_r, items_s)
        assert len(pairs) == len(set(pairs))
        assert stats.candidates == len(pairs)

    def test_matches_rtree_filter(self):
        from repro.join import sequential_join
        from repro.rtree import str_bulk_load

        items_r = self.random_items(300, seed=3)
        items_s = self.random_items(300, seed=4)
        z_pairs, _ = zorder_join(items_r, items_s, UNIT, bits=12)
        tree_r = str_bulk_load(items_r, dir_capacity=10, data_capacity=10)
        tree_s = str_bulk_load(items_s, dir_capacity=10, data_capacity=10)
        assert set(z_pairs) == sequential_join(tree_r, tree_s).pair_set()

    def test_more_regions_fewer_false_hits(self):
        items_r = self.random_items(200, seed=5)
        items_s = self.random_items(200, seed=6)
        _, loose = zorder_join(items_r, items_s, UNIT, bits=12, max_regions=1)
        _, tight = zorder_join(items_r, items_s, UNIT, bits=12, max_regions=16)
        assert tight.z_false_hits <= loose.z_false_hits
        assert tight.entries_r >= loose.entries_r  # the trade-off

    def test_empty_inputs(self):
        pairs, stats = zorder_join([], [], UNIT)
        assert pairs == []
        assert stats.candidates == 0
