"""Tests for the per-processor buffer manager and the SVM global directory."""

import pytest

from repro.buffer import AccessSource, GlobalDirectory, ProcessorBufferManager
from repro.sim import Environment, Machine
from repro.storage import DiskArray, PageKind


def make_setup(num_procs=2, num_disks=2, lru_capacity=4, with_directory=True):
    env = Environment()
    machine = Machine(env)
    disks = DiskArray(env, num_disks=num_disks, metrics=machine.metrics)
    directory = GlobalDirectory(machine) if with_directory else None
    managers = [
        ProcessorBufferManager(
            proc_id=p,
            machine=machine,
            disk_array=disks,
            lru_capacity=lru_capacity,
            tree_heights={0: 3, 1: 3},
            directory=directory,
        )
        for p in range(num_procs)
    ]
    return env, machine, disks, directory, managers


def run_accesses(env, accesses):
    """Drive a list of (manager, tree, level, page, kind) and return sources."""
    sources = []

    def proc():
        for manager, tree, level, page, kind in accesses:
            source = yield from manager.access(tree, level, page, kind)
            sources.append(source)

    env.process(proc())
    env.run()
    return sources


class TestLocalBuffers:
    def test_first_access_is_disk(self):
        env, machine, disks, _, (m0, _) = make_setup(with_directory=False)
        sources = run_accesses(env, [(m0, 0, 0, 10, PageKind.DIRECTORY)])
        assert sources == [AccessSource.DISK]
        assert machine.metrics.disk_accesses == 1

    def test_reaccess_hits_path_buffer(self):
        env, machine, _, _, (m0, _) = make_setup(with_directory=False)
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 10, PageKind.DIRECTORY),
                (m0, 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        assert sources == [AccessSource.DISK, AccessSource.PATH]
        assert machine.metrics["path_hits"] == 1
        assert machine.metrics.disk_accesses == 1

    def test_sibling_descent_hits_lru(self):
        # Visit root -> child A -> back up -> child B -> child A again:
        # child A left the path buffer but is still in the LRU.
        env, machine, _, _, (m0, _) = make_setup(with_directory=False)
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 1, PageKind.DIRECTORY),   # root
                (m0, 0, 1, 2, PageKind.DIRECTORY),   # child A
                (m0, 0, 1, 3, PageKind.DIRECTORY),   # child B (A falls off path)
                (m0, 0, 1, 2, PageKind.DIRECTORY),   # child A again
            ],
        )
        assert sources[-1] == AccessSource.LRU
        assert machine.metrics["lru_hits"] == 1

    def test_eviction_causes_disk_reread(self):
        env, machine, _, _, managers = make_setup(
            with_directory=False, lru_capacity=2
        )
        m0 = managers[0]
        accesses = [(m0, 0, 1, page, PageKind.DIRECTORY) for page in (1, 2, 3, 1)]
        # Use level 1 alternating so the path buffer holds only the last page.
        sources = run_accesses(env, accesses)
        assert sources == [
            AccessSource.DISK,
            AccessSource.DISK,
            AccessSource.DISK,
            AccessSource.DISK,  # page 1 was evicted by page 3
        ]

    def test_two_processors_do_not_share_local_buffers(self):
        env, machine, _, _, (m0, m1) = make_setup(with_directory=False)
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 10, PageKind.DIRECTORY),
                (m1, 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        # Both read from disk: the first approach's duplicated-I/O problem.
        assert sources == [AccessSource.DISK, AccessSource.DISK]
        assert machine.metrics.disk_accesses == 2


class TestGlobalBuffer:
    def test_remote_hit_instead_of_second_disk_read(self):
        env, machine, _, directory, (m0, m1) = make_setup()
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 10, PageKind.DIRECTORY),
                (m1, 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        assert sources == [AccessSource.DISK, AccessSource.REMOTE]
        assert machine.metrics.disk_accesses == 1
        assert machine.metrics["remote_hits"] == 1

    def test_remote_copy_not_cached_locally(self):
        # At-most-once invariant: the remote reader does not duplicate the
        # page into its own buffer, so a later access is remote again.
        env, machine, _, directory, (m0, m1) = make_setup()
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 10, PageKind.DIRECTORY),
                (m1, 0, 0, 10, PageKind.DIRECTORY),
                (m1, 0, 0, 99, PageKind.DIRECTORY),  # push 10 off m1's path
                (m1, 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        assert sources[1] == AccessSource.REMOTE
        assert sources[3] == AccessSource.REMOTE
        assert 10 not in m1.lru
        assert machine.metrics.disk_accesses == 2  # pages 10 and 99 once each

    def test_directory_registration_lifecycle(self):
        env, machine, _, directory, (m0, m1) = make_setup(lru_capacity=2)
        run_accesses(
            env,
            [
                (m0, 0, 1, 1, PageKind.DIRECTORY),
                (m0, 0, 1, 2, PageKind.DIRECTORY),
                (m0, 0, 1, 3, PageKind.DIRECTORY),  # evicts page 1
            ],
        )
        assert directory.owner_of(1) is None
        assert directory.owner_of(2) == 0
        assert directory.owner_of(3) == 0

    def test_stale_deregister_does_not_drop_new_owner(self):
        env, machine, _, directory, (m0, m1) = make_setup(lru_capacity=1)

        def proc():
            # m0 loads page 1, then loads page 2 which evicts page 1;
            # meanwhile m1 loads page 1 itself (m0's eviction must not
            # remove m1's registration).
            yield from m0.access(0, 0, 1, PageKind.DIRECTORY)
            yield from m1.access(0, 0, 1, PageKind.DIRECTORY)
            # m1 read remotely, not from disk: page 1 still owned by m0.
            yield from m0.access(0, 0, 2, PageKind.DIRECTORY)  # evicts 1 at m0

        env.process(proc())
        env.run()
        assert directory.owner_of(1) is None  # m0 owned it and evicted it
        assert directory.owner_of(2) == 0

    def test_own_registered_page_served_from_lru(self):
        env, machine, _, directory, (m0, _) = make_setup()
        sources = run_accesses(
            env,
            [
                (m0, 0, 0, 10, PageKind.DIRECTORY),
                (m0, 0, 1, 11, PageKind.DIRECTORY),
                (m0, 0, 0, 10, PageKind.DIRECTORY),  # path hit (root stays)
                (m0, 1, 0, 11, PageKind.DIRECTORY),  # other tree: LRU hit
            ],
        )
        assert sources[2] == AccessSource.PATH
        assert sources[3] == AccessSource.LRU

    def test_remote_access_charges_more_time_than_local(self):
        def elapsed(with_directory, accesses_builder):
            env, machine, _, _, managers = make_setup(
                with_directory=with_directory
            )
            run_accesses(env, accesses_builder(managers))
            return env.now

        # Second access from the other processor: remote copy vs disk.
        remote_time = elapsed(
            True,
            lambda ms: [
                (ms[0], 0, 0, 10, PageKind.DIRECTORY),
                (ms[1], 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        local_time = elapsed(
            False,
            lambda ms: [
                (ms[0], 0, 0, 10, PageKind.DIRECTORY),
                (ms[1], 0, 0, 10, PageKind.DIRECTORY),
            ],
        )
        # The global-buffer run replaces a 16 ms disk read by a sub-ms copy.
        assert remote_time < local_time

    def test_reset_paths(self):
        env, machine, _, _, (m0, _) = make_setup()
        run_accesses(env, [(m0, 0, 0, 10, PageKind.DIRECTORY)])
        m0.reset_paths()
        assert not m0.path_buffers[0].contains(10)
