"""Unit tests for the LRU replacement policy."""

import pytest

from repro.buffer import LRUBuffer


class TestLRUBuffer:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    def test_miss_then_hit(self):
        buf = LRUBuffer(2)
        assert not buf.touch(1)
        buf.insert(1)
        assert buf.touch(1)
        assert buf.hits == 1
        assert buf.misses == 1

    def test_eviction_order_is_lru(self):
        buf = LRUBuffer(2)
        buf.insert(1)
        buf.insert(2)
        evicted = buf.insert(3)
        assert evicted == 1
        assert 1 not in buf
        assert 2 in buf and 3 in buf

    def test_touch_refreshes_recency(self):
        buf = LRUBuffer(2)
        buf.insert(1)
        buf.insert(2)
        buf.touch(1)  # 2 becomes least recent
        assert buf.insert(3) == 2

    def test_insert_existing_refreshes_without_eviction(self):
        buf = LRUBuffer(2)
        buf.insert(1)
        buf.insert(2)
        assert buf.insert(1) is None  # refresh, no eviction
        assert buf.insert(3) == 2

    def test_insert_below_capacity_no_eviction(self):
        buf = LRUBuffer(3)
        assert buf.insert(1) is None
        assert buf.insert(2) is None
        assert len(buf) == 2

    def test_remove(self):
        buf = LRUBuffer(2)
        buf.insert(1)
        assert buf.remove(1)
        assert not buf.remove(1)
        assert 1 not in buf

    def test_pages_least_recent_first(self):
        buf = LRUBuffer(3)
        buf.insert(1)
        buf.insert(2)
        buf.insert(3)
        buf.touch(1)
        assert list(buf.pages()) == [2, 3, 1]

    def test_clear(self):
        buf = LRUBuffer(2)
        buf.insert(1)
        buf.clear()
        assert len(buf) == 0

    def test_capacity_one_thrashes(self):
        buf = LRUBuffer(1)
        buf.insert(1)
        assert buf.insert(2) == 1
        assert buf.insert(3) == 2
        assert len(buf) == 1


class TestPathBuffer:
    def test_height_positive(self):
        from repro.buffer import PathBuffer

        with pytest.raises(ValueError):
            PathBuffer(0)

    def test_record_and_contains(self):
        from repro.buffer import PathBuffer

        pb = PathBuffer(3)
        pb.record(0, 100)
        pb.record(1, 200)
        assert pb.contains(100)
        assert pb.contains(200)
        assert not pb.contains(300)
        assert pb.hits == 2

    def test_record_invalidates_deeper_levels(self):
        from repro.buffer import PathBuffer

        pb = PathBuffer(3)
        pb.record(0, 1)
        pb.record(1, 2)
        pb.record(2, 3)
        pb.record(1, 20)  # sibling subtree: old level-2 page gone
        assert pb.current_path() == [1, 20, None]
        assert not pb.contains(3)

    def test_level_bounds_checked(self):
        from repro.buffer import PathBuffer

        pb = PathBuffer(2)
        with pytest.raises(IndexError):
            pb.record(2, 1)
        with pytest.raises(IndexError):
            pb.record(-1, 1)

    def test_clear(self):
        from repro.buffer import PathBuffer

        pb = PathBuffer(2)
        pb.record(0, 1)
        pb.clear()
        assert pb.current_path() == [None, None]
