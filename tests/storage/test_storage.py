"""Unit tests for page layout, disk timing, disk array and clusters."""

import pytest

from repro.sim import Environment, Metrics
from repro.storage import (
    DEFAULT_DISK,
    DEFAULT_STORAGE,
    ClusterStore,
    DiskArray,
    DiskParams,
    PageKind,
    StorageParams,
)


class TestStorageParams:
    def test_paper_capacities(self):
        # Section 4.1: 4 KB pages, 40 B directory entries, 156 B data entries.
        assert DEFAULT_STORAGE.page_size == 4096
        assert DEFAULT_STORAGE.dir_capacity == 102
        assert DEFAULT_STORAGE.data_capacity == 26

    def test_custom_params(self):
        params = StorageParams(page_size=1024, dir_entry_bytes=40, data_entry_bytes=156)
        assert params.dir_capacity == 25
        assert params.data_capacity == 6


class TestDiskParams:
    def test_paper_page_read_time(self):
        # 9 ms seek + 6 ms latency + 1 ms transfer = 16 ms.
        assert DEFAULT_DISK.page_read_time == pytest.approx(16e-3)

    def test_paper_data_page_read_time(self):
        # Including the 26 KB cluster: 37.5 ms (section 4.2).
        assert DEFAULT_DISK.data_page_read_time == pytest.approx(37.5e-3)

    def test_service_time_by_kind(self):
        assert DEFAULT_DISK.service_time(PageKind.DIRECTORY) == pytest.approx(16e-3)
        assert DEFAULT_DISK.service_time(PageKind.DATA) == pytest.approx(37.5e-3)

    def test_cluster_read_time(self):
        # 9 + 6 + ceil(26/4) * 1 = 21.5 ms.
        assert DEFAULT_DISK.cluster_read_time == pytest.approx(21.5e-3)


class TestDiskArray:
    def test_modulo_placement(self):
        env = Environment()
        array = DiskArray(env, num_disks=8)
        assert array.disk_of(0) == 0
        assert array.disk_of(7) == 7
        assert array.disk_of(8) == 0
        assert array.disk_of(13) == 5

    def test_at_least_one_disk(self):
        with pytest.raises(ValueError):
            DiskArray(Environment(), num_disks=0)

    def test_single_read_timing(self):
        env = Environment()
        array = DiskArray(env, num_disks=1)

        def proc():
            yield env.process(array.read(0, PageKind.DIRECTORY))

        env.process(proc())
        assert env.run() == pytest.approx(16e-3)

    def test_reads_on_same_disk_serialise(self):
        env = Environment()
        array = DiskArray(env, num_disks=4)

        def proc(page):
            yield env.process(array.read(page, PageKind.DIRECTORY))

        # Pages 0 and 4 share disk 0.
        env.process(proc(0))
        env.process(proc(4))
        assert env.run() == pytest.approx(32e-3)

    def test_reads_on_distinct_disks_overlap(self):
        env = Environment()
        array = DiskArray(env, num_disks=4)

        def proc(page):
            yield env.process(array.read(page, PageKind.DIRECTORY))

        env.process(proc(0))
        env.process(proc(1))
        assert env.run() == pytest.approx(16e-3)

    def test_metrics_counting(self):
        env = Environment()
        metrics = Metrics()
        array = DiskArray(env, num_disks=2, metrics=metrics)

        def proc():
            yield env.process(array.read(0, PageKind.DIRECTORY))
            yield env.process(array.read(1, PageKind.DATA))
            yield env.process(array.read(2, PageKind.DIRECTORY))

        env.process(proc())
        env.run()
        assert metrics.disk_accesses == 3
        assert array.utilisation_counts() == [2, 1]

    def test_one_disk_is_bottleneck(self):
        # The Figure 9 effect in miniature: with 1 disk, elapsed time is the
        # sum of the service times regardless of how many processors issue.
        def run(num_disks):
            env = Environment()
            array = DiskArray(env, num_disks=num_disks)

            def proc(page):
                yield env.process(array.read(page, PageKind.DIRECTORY))

            for page in range(8):
                env.process(proc(page))
            return env.run()

        assert run(1) == pytest.approx(8 * 16e-3)
        assert run(8) == pytest.approx(16e-3)

    def test_custom_disk_params(self):
        env = Environment()
        params = DiskParams(seek_time=1e-3, latency_time=1e-3, transfer_time_per_page=1e-3)
        array = DiskArray(env, num_disks=1, params=params)

        def proc():
            yield env.process(array.read(0, PageKind.DIRECTORY))

        env.process(proc())
        assert env.run() == pytest.approx(3e-3)


class TestClusterStore:
    def test_store_and_load(self):
        store = ClusterStore()
        store.store(5, {"a": "geomA", "b": "geomB"})
        assert store.load(5) == {"a": "geomA", "b": "geomB"}
        assert store.geometry(5, "a") == "geomA"

    def test_one_to_one_replacement(self):
        store = ClusterStore()
        store.store(5, {"a": 1})
        store.store(5, {"b": 2})
        assert store.load(5) == {"b": 2}

    def test_unknown_page_raises(self):
        store = ClusterStore()
        with pytest.raises(KeyError):
            store.load(99)

    def test_contains_len_pages(self):
        store = ClusterStore()
        store.store(1, {"x": 0})
        store.store(2, {"y": 0})
        assert 1 in store and 2 in store and 3 not in store
        assert len(store) == 2
        assert set(store.page_ids()) == {1, 2}

    def test_average_cluster_bytes(self):
        store = ClusterStore()
        store.store(1, {"a": 0, "b": 0})
        store.store(2, {"c": 0, "d": 0, "e": 0, "f": 0})
        assert store.average_cluster_bytes() == pytest.approx(3.0)
        assert store.average_cluster_bytes(bytes_per_geometry=1000) == pytest.approx(3000.0)

    def test_empty_average(self):
        assert ClusterStore().average_cluster_bytes() == 0.0
