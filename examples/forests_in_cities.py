#!/usr/bin/env python
"""The paper's motivating query: "find all forests which are in a city".

A polygon/polygon spatial join, end to end:

1. generate two polygon layers over one region — city boundaries and
   forest patches;
2. index their MBRs in R*-trees and run the filter step;
3. second filter: convex hulls ([BKS 94]);
4. refinement: exact polygon/polygon intersection.

Prints how many candidate pairs each step eliminates — the multi-step
funnel the paper's section 2.1 describes.
"""

import math
import random

from repro import Polygon, Rect, sequential_join, str_bulk_load
from repro.geometry import ConvexPolygon


def blob(rng, cx, cy, mean_radius, vertices=9):
    """A wobbly convex-ish polygon around a center point."""
    points = []
    for i in range(vertices):
        angle = 2 * math.pi * i / vertices
        radius = mean_radius * rng.uniform(0.6, 1.4)
        points.append((cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
    return Polygon(points)


def make_layer(count, mean_radius, seed):
    rng = random.Random(seed)
    polygons = {}
    items = []
    for oid in range(count):
        cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
        polygon = blob(rng, cx, cy, mean_radius * rng.uniform(0.5, 1.5))
        polygons[oid] = polygon
        items.append((oid, polygon.mbr))
    return items, polygons


def main() -> None:
    city_items, cities = make_layer(400, mean_radius=4.0, seed=1)
    forest_items, forests = make_layer(1500, mean_radius=1.5, seed=2)
    city_tree = str_bulk_load(city_items, dir_capacity=16, data_capacity=16)
    forest_tree = str_bulk_load(forest_items, dir_capacity=16, data_capacity=16)
    print(f"{len(cities)} cities, {len(forests)} forests")

    # Step 1: MBR filter via the R*-tree join.
    candidates = sequential_join(forest_tree, city_tree).pairs
    print(f"\nMBR filter:     {len(candidates):5d} candidate pairs")

    # Step 2: convex-hull filter.
    forest_hulls = {oid: ConvexPolygon.of(p.points) for oid, p in forests.items()}
    city_hulls = {oid: ConvexPolygon.of(p.points) for oid, p in cities.items()}
    survivors = [
        (f, c)
        for f, c in candidates
        if forest_hulls[f].intersects(city_hulls[c])
    ]
    print(f"hull filter:    {len(survivors):5d} survive "
          f"({len(candidates) - len(survivors)} false hits eliminated)")

    # Step 3: exact polygon intersection.
    answers = [
        (f, c)
        for f, c in survivors
        if forests[f].intersects_polygon(cities[c])
    ]
    print(f"exact test:     {len(answers):5d} forests intersect a city")

    inside = [
        (f, c)
        for f, c in answers
        if all(cities[c].contains_point(x, y) for x, y in forests[f].points)
    ]
    print(f"fully inside:   {len(inside):5d} forests lie completely in a city")

    for f, c in inside[:5]:
        print(f"  forest {f} in city {c}")


if __name__ == "__main__":
    main()
