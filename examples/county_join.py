#!/usr/bin/env python
"""County-map join with a *real* refinement step.

The paper's motivating query — "find all forests which are in a city" —
is a join of two map layers.  This example runs the full multi-step
pipeline on synthetic county maps *with exact geometry*:

1. filter step: R*-tree join over MBRs → candidate pairs,
2. refinement step: exact polyline intersection → answers vs false hits,

and reports the false-hit rate the MBR approximation produces — the
quantity that justifies the paper's refinement cost model (2-18 ms per
candidate).
"""

import time

from repro import (
    ExactRefinement,
    build_tree,
    paper_maps,
    sequential_join,
)


def main() -> None:
    # 1% scale with exact geometry attached to every object.
    map1, map2 = paper_maps(scale=0.01, include_geometry=True)
    print(f"streets: {len(map1)}   boundaries/rivers/rails: {len(map2)}")

    tree1, tree2 = build_tree(map1), build_tree(map2)

    started = time.perf_counter()
    filter_result = sequential_join(tree1, tree2)
    filter_seconds = time.perf_counter() - started
    print(f"\nfilter step: {filter_result.candidates} candidates "
          f"in {filter_seconds * 1000:.0f} ms")

    geometry1 = {obj.oid: obj.points for obj in map1.objects}
    geometry2 = {obj.oid: obj.points for obj in map2.objects}
    refinement = ExactRefinement(geometry1, geometry2)

    started = time.perf_counter()
    answers = refinement.filter_answers(filter_result.pairs)
    refine_seconds = time.perf_counter() - started

    false_hits = refinement.tests - refinement.answers
    print(f"refinement:  {len(answers)} answers, {false_hits} false hits "
          f"({false_hits / max(1, refinement.tests):.0%} of candidates) "
          f"in {refine_seconds * 1000:.0f} ms")

    print("\nsample answers (street oid, map-2 oid):")
    for pair in answers[:10]:
        print(f"  {pair}")


if __name__ == "__main__":
    main()
