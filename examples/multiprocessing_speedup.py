#!/usr/bin/env python
"""Real CPU parallelism: filter + exact refinement across OS processes.

The simulation reproduces the paper's *measurements*; this example shows
the algorithm also parallelises for real on today's hardware.  CPython's
GIL rules out thread-level speed-up, so the paper's task creation + static
range assignment run over a fork-based process pool
(:func:`repro.multiprocessing_join`): workers inherit the trees and the
exact geometry through fork — the OS-process analogue of shared virtual
memory — and each worker refines the candidates it finds, exactly the
paper's distribution principle.

The workload is two layers of detailed river-like polylines (dozens of
vertices each), so the exact intersection tests dominate — like the
refinement step dominates the paper's joins.
"""

import math
import os
import random
import time

from repro import Rect, multiprocessing_join, str_bulk_load
from repro.join.parallel import prepare_trees


def river_layer(count: int, seed: int):
    """Wiggly polylines with ~48 vertices each over a shared square."""
    rng = random.Random(seed)
    items, geometry = [], {}
    for oid in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        angle = rng.uniform(0, 2 * math.pi)
        points = [(x, y)]
        for _ in range(47):
            angle += rng.gauss(0, 0.4)
            x += 0.16 * math.cos(angle)
            y += 0.16 * math.sin(angle)
            points.append((x, y))
        geometry[oid] = tuple(points)
        items.append((oid, Rect.from_points(points)))
    return items, geometry


def main() -> None:
    items_r, geometry_r = river_layer(4000, seed=1)
    items_s, geometry_s = river_layer(4000, seed=2)
    tree_r = str_bulk_load(items_r)
    tree_s = str_bulk_load(items_s)
    prepare_trees(tree_r, tree_s)
    cpus = os.cpu_count() or 1
    print(f"two layers of {len(items_r)} dense polylines; "
          f"available CPUs: {cpus}\n")
    if cpus == 1:
        print("NOTE: this machine exposes a single CPU — worker counts "
              "beyond 1 cannot run in parallel here,\nso expect speed-ups "
              "around 1.0x (the results still verify identical).\n")

    results = {}
    for workers in (1, 2, 4, 8):
        started = time.perf_counter()
        answers = multiprocessing_join(
            tree_r, tree_s, processes=workers,
            geometry_r=geometry_r, geometry_s=geometry_s,
        )
        elapsed = time.perf_counter() - started
        results[workers] = (set(answers), elapsed)
        note = "" if workers == 1 else (
            f"   -> speed-up {results[1][1] / elapsed:.2f}x"
        )
        print(f"filter + refinement x{workers}: {elapsed:6.2f} s{note}")

    baseline = results[1][0]
    assert all(answers == baseline for answers, _ in results.values())
    print(f"\n{len(baseline)} exact answers from every worker count")


if __name__ == "__main__":
    main()
