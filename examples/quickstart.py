#!/usr/bin/env python
"""Quickstart: build two R*-trees, join them sequentially and in parallel.

Runs in a few seconds.  Shows the three things the library does:

1. index spatial objects in an R*-tree,
2. compute the spatial join's filter step ([BKS 93]),
3. replay the paper's parallel join on the simulated 24-processor SVM
   machine and read off response time, speed-up and disk accesses.
"""

from repro import (
    GD,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    build_tree,
    paper_maps,
    parallel_spatial_join,
    prepare_trees,
    sequential_join,
    tree_stats,
)


def main() -> None:
    # A 2%-scale version of the paper's two Californian county maps:
    # ~2,600 street segments and ~2,500 boundary/river/railway objects.
    map1, map2 = paper_maps(scale=0.02)
    print(f"generated {len(map1)} street objects, {len(map2)} map-2 objects")

    tree1, tree2 = build_tree(map1), build_tree(map2)
    for name, tree in (("tree1", tree1), ("tree2", tree2)):
        stats = tree_stats(tree)
        print(
            f"{name}: height={stats.height} data_pages={stats.data_pages} "
            f"dir_pages={stats.directory_pages} leaf_fill={stats.avg_leaf_fill:.0%}"
        )

    # The sequential filter step: all pairs of intersecting MBRs.
    result = sequential_join(tree1, tree2)
    print(f"\nsequential join: {result.candidates} candidate pairs, "
          f"{result.intersection_tests} intersection tests")

    # The paper's best parallel variant: global buffer, dynamic task
    # assignment, task reassignment on all directory levels.
    page_store = prepare_trees(tree1, tree2)
    policy = ReassignmentPolicy(level=ReassignLevel.ALL)
    single = parallel_spatial_join(
        tree1, tree2,
        ParallelJoinConfig(processors=1, disks=1, total_buffer_pages=50,
                           variant=GD, reassignment=policy),
        page_store=page_store,
    )
    eight = parallel_spatial_join(
        tree1, tree2,
        ParallelJoinConfig(processors=8, disks=8, total_buffer_pages=400,
                           variant=GD, reassignment=policy),
        page_store=page_store,
    )
    assert eight.pair_set() == result.pair_set()

    print(f"\nsimulated t(1)  = {single.response_time:7.1f} s "
          f"({single.disk_accesses} disk accesses)")
    print(f"simulated t(8)  = {eight.response_time:7.1f} s "
          f"({eight.disk_accesses} disk accesses)")
    print(f"speed-up        = {eight.speedup_against(single):.1f} "
          f"(ideal: 8.0)")


if __name__ == "__main__":
    main()
