#!/usr/bin/env python
"""Load balancing demo: why task reassignment matters (paper section 3.4).

Spatially clustered maps make some pairs of subtrees far more expensive
than others, so the static range assignment leaves processors idle while
one of them grinds through a hot city block.  This example runs the same
join with reassignment off / root level / all levels and prints each
processor's finish time as a bar chart — the shrinking spread is the
paper's Figure 7.
"""

from repro import (
    LSR,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    build_tree,
    paper_maps,
    parallel_spatial_join,
    prepare_trees,
)

PROCESSORS = 8


def bar(value: float, maximum: float, width: int = 46) -> str:
    filled = round(width * value / maximum) if maximum else 0
    return "#" * filled


def main() -> None:
    map1, map2 = paper_maps(scale=0.05)
    tree1, tree2 = build_tree(map1), build_tree(map2)
    page_store = prepare_trees(tree1, tree2)

    settings = [
        ("no reassignment", ReassignmentPolicy(level=ReassignLevel.NONE)),
        ("root level", ReassignmentPolicy(level=ReassignLevel.ROOT)),
        ("all levels", ReassignmentPolicy(level=ReassignLevel.ALL)),
    ]
    results = []
    for label, policy in settings:
        result = parallel_spatial_join(
            tree1, tree2,
            ParallelJoinConfig(
                processors=PROCESSORS, disks=PROCESSORS,
                total_buffer_pages=50 * PROCESSORS,
                variant=LSR, reassignment=policy,
            ),
            page_store=page_store,
        )
        results.append((label, result))

    longest = max(r.response_time for _, r in results)
    for label, result in results:
        print(f"\n{label}  (response {result.response_time:.1f} s, "
              f"{result.reassignments} reassignments, "
              f"{result.disk_accesses} disk accesses)")
        for p, finish in enumerate(result.times.finish):
            print(f"  P{p}: {bar(finish, longest)} {finish:.1f}s")

    base = results[0][1].response_time
    best = results[-1][1].response_time
    print(f"\nresponse time {base:.1f}s -> {best:.1f}s "
          f"({(1 - best / base):.0%} faster) with reassignment on all levels")


if __name__ == "__main__":
    main()
