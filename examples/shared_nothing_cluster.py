#!/usr/bin/env python
"""Shared-nothing cluster join — the paper's future work, made runnable.

Section 5: "In our future work, we are particularly interested in a
distributed spatial join processing using a shared-nothing architecture
... the assignment of the data to the different disks is of special
interest."  This example joins the county maps on an 8-node cluster model
(private disks and buffers, message passing over an ATM-class
interconnect) and shows exactly why the data placement matters:

* *spatial* declustering + range assignment keeps page accesses on the
  owning node;
* *round-robin* (spatially blind) declustering turns most of them into
  network fetches;

with the paper's SVM machine as the reference point.
"""

from repro import (
    GD,
    ParallelJoinConfig,
    ReassignLevel,
    ReassignmentPolicy,
    build_tree,
    paper_maps,
    parallel_spatial_join,
    prepare_trees,
)
from repro.join.assignment import AssignmentMode
from repro.join.shared_nothing import (
    Placement,
    SharedNothingConfig,
    shared_nothing_join,
)

NODES = 8


def main() -> None:
    map1, map2 = paper_maps(scale=0.05)
    tree1, tree2 = build_tree(map1), build_tree(map2)
    page_store = prepare_trees(tree1, tree2)
    print(f"maps: {len(map1)} + {len(map2)} objects, {NODES} cluster nodes\n")

    print(f"{'architecture':<26} {'response':>9} {'disk reads':>11} {'remote':>8}")
    rows = []
    for placement in (Placement.SPATIAL, Placement.ROUND_ROBIN):
        result = shared_nothing_join(
            tree1, tree2,
            SharedNothingConfig(
                processors=NODES,
                buffer_pages_per_processor=40,
                placement=placement,
                assignment=AssignmentMode.STATIC_RANGE,
            ),
            page_store=page_store,
        )
        rows.append((f"SN, {placement.value} placement", result,
                     result.metrics["remote_fetches"]))

    svm = parallel_spatial_join(
        tree1, tree2,
        ParallelJoinConfig(
            processors=NODES, disks=NODES, total_buffer_pages=40 * NODES,
            variant=GD,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        ),
        page_store=page_store,
    )
    rows.append(("SVM, gd + reassign-all", svm, svm.metrics["remote_hits"]))

    reference = rows[0][1].pair_set()
    for label, result, remote in rows:
        assert result.pair_set() == reference
        print(f"{label:<26} {result.response_time:8.1f}s "
              f"{result.disk_accesses:>11} {remote:>8}")

    spatial_remote = rows[0][2]
    blind_remote = rows[1][2]
    print(f"\nspatial placement avoids "
          f"{blind_remote - spatial_remote} of {blind_remote} remote fetches "
          f"({(blind_remote - spatial_remote) / blind_remote:.0%})")


if __name__ == "__main__":
    main()
