#!/usr/bin/env python
"""Walkthrough of Figures 1-4: plane-sweep order and the three assignments.

A toy workload small enough to print completely: how task creation orders
the pairs of subtrees along the sweep line (Figure 1/2), and how static
range (Figure 2), static round-robin (Figure 3) and dynamic assignment
(Figure 4) distribute them over three processors.
"""

from repro import Rect, create_tasks, str_bulk_load
from repro.join import static_range_assignment, static_round_robin_assignment
from repro.join.parallel import prepare_trees


def label(task) -> str:
    xl = task.sweep_position
    return f"(pair@x={xl:.1f})"


def main() -> None:
    # Two tiny maps along a street: clusters every ~4 units.
    items_r = [
        (i, Rect(x, 0.0, x + 1.2, 1.0))
        for i, x in enumerate(i * 0.9 for i in range(40))
    ]
    items_s = [
        (i, Rect(x + 0.3, 0.2, x + 1.6, 1.2))
        for i, x in enumerate(i * 0.9 for i in range(40))
    ]
    tree_r = str_bulk_load(items_r, dir_capacity=4, data_capacity=4)
    tree_s = str_bulk_load(items_s, dir_capacity=4, data_capacity=4)
    prepare_trees(tree_r, tree_s)

    tasks = create_tasks(tree_r, tree_s)
    print(f"task creation: m = {len(tasks)} intersecting pairs of subtrees")
    print("local plane-sweep order:")
    print("  " + "  ".join(label(t) for t in tasks))

    n = 3
    print(f"\nstatic range assignment over {n} processors (Figure 2):")
    for p, chunk in enumerate(static_range_assignment(tasks, n)):
        print(f"  P{p + 1}: " + "  ".join(label(t) for t in chunk))

    print(f"\nstatic round-robin assignment (Figure 3):")
    for p, chunk in enumerate(static_round_robin_assignment(tasks, n)):
        print(f"  P{p + 1}: " + "  ".join(label(t) for t in chunk))

    print("\ndynamic assignment (Figure 4): a shared FCFS queue —")
    print("  " + "  ".join(label(t) for t in tasks))
    print("  each processor fetches the next task when it finishes its own.")


if __name__ == "__main__":
    main()
