"""Legacy setup shim.

This offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build an editable wheel) cannot run.  Keeping a setup.py and
omitting ``[build-system]`` from pyproject.toml makes ``pip install -e .``
fall back to the classic ``setup.py develop`` path, which works offline.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
