"""Figure 8: selecting the processor to be helped (paper section 4.4).

Test series a: the idle processor helps the most-loaded processor
(highest (hl, ns) report); series b: an arbitrary processor ([SN 93]).
n = 8, reassignment on all levels.

Expected shape: a small increase in disk accesses for local buffers with
the arbitrary choice; no meaningful difference for the global buffer.
"""

import time

from repro.bench import active_scale, figure8, heading, render_table, report, report_json


def bench_figure8(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(figure8, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "figure8",
        heading(f"Figure 8 — victim selection a/b (scale={active_scale()})")
        + "\n"
        + render_table(rows, ["variant", "a: max load", "b: arbitrary"]),
    )
    report_json(
        "figure8",
        {
            "bench": "figure8",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"processors": 8, "reassignment": "all levels"},
            "rows": rows,
        },
    )
    by_variant = {r["variant"]: r for r in rows}
    # Global-buffer variants: the two strategies stay close.
    for variant in ("gsrr", "gd"):
        a = by_variant[variant]["a: max load"]
        b = by_variant[variant]["b: arbitrary"]
        assert abs(a - b) / max(a, b) < 0.25
