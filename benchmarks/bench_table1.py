"""Table 1: parameters of the R*-trees (paper section 4.1).

Regenerates the tree-shape statistics — height, data entries, data pages,
directory pages — and the task count m, side by side with the paper's
values.  The benchmark measures the tree construction (STR packing of the
full map), the operation Table 1 characterises.
"""

import time

from repro.bench import active_scale, heading, render_table, report, report_json, table1_rows
from repro.datagen import build_tree


def bench_build_tree1(benchmark, workload):
    tree = benchmark.pedantic(
        build_tree, args=(workload.map1,), rounds=1, iterations=1
    )
    assert len(tree) == len(workload.map1)


def bench_table1_report(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(table1_rows, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "table1",
        heading(f"Table 1 — R*-tree parameters (scale={active_scale()})")
        + "\n"
        + render_table(
            rows, ["parameter", "tree1", "tree2", "paper tree1", "paper tree2"]
        ),
    )
    report_json(
        "table1",
        {
            "bench": "table1",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"maps": ["map1", "map2"]},
            "rows": rows,
        },
    )
    heights = [row for row in rows if row["parameter"] == "height"]
    assert heights[0]["tree1"] in (2, 3, 4)
