"""Extension bench: parallel window and kNN queries (paper section 5).

The paper's future work names window and neighbour queries as the next
operations of a parallel spatial query framework.  This bench measures
both on the simulated machine: response time of a large window query as
the processor count grows (d = n, global buffer), and the page savings of
the shared kNN pruning bound.
"""

import time

from repro.bench import active_scale, heading, render_table, report, report_json, scaled_pages
from repro.geometry import Rect
from repro.query import ParallelQueryConfig, parallel_knn, parallel_window_query, prepare_tree


def run_queries(workload):
    tree = workload.tree1
    page_store = prepare_tree(tree)
    side = workload.map1.region.side
    window = Rect(0.1 * side, 0.1 * side, 0.6 * side, 0.6 * side)
    rows = []
    baseline = None
    for n in (1, 2, 4, 8, 16):
        result = parallel_window_query(
            tree,
            window,
            ParallelQueryConfig(
                processors=n,
                disks=n,
                total_buffer_pages=scaled_pages(100 * n, workload.scale),
            ),
            page_store=page_store,
        )
        if baseline is None:
            baseline = result.response_time
        rows.append(
            {
                "query": "window 50% region",
                "processors": n,
                "response (s)": result.response_time,
                "speedup": baseline / result.response_time
                if result.response_time
                else float("inf"),
                "disk accesses": result.disk_accesses,
                "results": len(result.entries),
            }
        )
    knn = parallel_knn(
        tree,
        side / 2.0,
        side / 2.0,
        10,
        ParallelQueryConfig(
            processors=8, disks=8,
            total_buffer_pages=scaled_pages(800, workload.scale),
        ),
        page_store=page_store,
    )
    rows.append(
        {
            "query": "10-NN of center",
            "processors": 8,
            "response (s)": knn.response_time,
            "speedup": float("nan"),
            "disk accesses": knn.disk_accesses,
            "results": len(knn.entries),
        }
    )
    return rows


def bench_parallel_queries(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(run_queries, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "queries",
        heading(f"Parallel window / kNN queries (scale={active_scale()})")
        + "\n"
        + render_table(
            rows,
            ["query", "processors", "response (s)", "speedup",
             "disk accesses", "results"],
        ),
    )
    report_json(
        "queries",
        {
            "bench": "queries",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"processors": [1, 2, 4, 8, 16], "knn_k": 10},
            "rows": rows,
        },
    )
    window_rows = [r for r in rows if r["query"].startswith("window")]
    by_n = {r["processors"]: r for r in window_rows}
    assert by_n[8]["response (s)"] < by_n[1]["response (s)"]
    assert by_n[8]["speedup"] > 3
    # Every processor count finds the same result cardinality.
    assert len({r["results"] for r in window_rows}) == 1
    knn_row = rows[-1]
    assert knn_row["results"] == 10
