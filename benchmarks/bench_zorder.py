"""Extension bench: R*-tree filter vs the z-order filter of [OM 88].

The paper's related-work section contrasts its R-tree-based filter with
PROBE's z-ordering + B-trees.  This bench joins the same maps both ways
and compares the CPU-side costs: intersection/interval tests, index entry
counts (z-decomposition replicates objects), duplicates and z-false hits
— while verifying the candidate sets are identical.
"""

import time

from repro.bench import active_scale, heading, render_table, report, report_json
from repro.join import sequential_join
from repro.zorder import zorder_join


def run_comparison(workload):
    items_r = workload.map1.items()
    items_s = workload.map2.items()
    bounds = workload.map1.region.bounds

    started = time.perf_counter()
    rtree_result = sequential_join(workload.tree1, workload.tree2)
    rtree_seconds = time.perf_counter() - started

    rows = [
        {
            "filter": "R*-tree join [BKS 93]",
            "index entries": workload.tree1.size + workload.tree2.size,
            "tests": rtree_result.intersection_tests,
            "duplicates": 0,
            "false matches": 0,
            "candidates": rtree_result.candidates,
            "wall (s)": rtree_seconds,
        }
    ]
    for max_regions in (1, 4):
        started = time.perf_counter()
        pairs, stats = zorder_join(
            items_r, items_s, bounds, bits=14, max_regions=max_regions
        )
        z_seconds = time.perf_counter() - started
        assert set(pairs) == rtree_result.pair_set()
        rows.append(
            {
                "filter": f"z-order join [OM 88], {max_regions} region(s)",
                "index entries": stats.entries_r + stats.entries_s,
                "tests": stats.interval_tests,
                "duplicates": stats.duplicates,
                "false matches": stats.z_false_hits,
                "candidates": stats.candidates,
                "wall (s)": z_seconds,
            }
        )
    return rows


def bench_zorder_vs_rtree(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(run_comparison, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "zorder",
        heading(f"R*-tree vs z-order filter (scale={active_scale()})")
        + "\n"
        + render_table(
            rows,
            ["filter", "index entries", "tests", "duplicates",
             "false matches", "candidates", "wall (s)"],
        ),
    )
    report_json(
        "zorder",
        {
            "bench": "zorder",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"bits": 14, "max_regions": [1, 4]},
            "rows": rows,
        },
    )
    # Identical candidate sets were asserted inside; all rows agree.
    assert len({row["candidates"] for row in rows}) == 1
