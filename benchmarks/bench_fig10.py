"""Figure 10: speed-up and disk accesses vs number of processors
(paper section 4.5).

Same runs as Figure 9 (gd + reassignment on all levels, 100 pages of
buffer per processor).  The paper reports a near-linear speed-up for
d = n (22.6 at n = 24), a saturating curve for d = 8, a flat one for
d = 1, and *decreasing* disk accesses as n grows (the total global buffer
grows with n).
"""

import time

from repro.bench import (
    active_scale,
    ascii_chart,
    heading,
    render_series,
    render_table,
    report,
    report_json,
)
from bench_fig9 import fig9_rows


def bench_figure10(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(fig9_rows, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    text = [
        heading(f"Figure 10 — speed-up and disk accesses (scale={active_scale()})"),
        render_table(
            rows,
            ["series", "processors", "speedup", "disk accesses", "total run time (s)"],
        ),
    ]
    for series in ("d=1", "d=8", "d=n"):
        points = [
            (r["processors"], round(r["speedup"], 1))
            for r in rows
            if r["series"] == series
        ]
        text.append(render_series(f"speedup {series}", points))
    chart_series = {
        series: [(r["processors"], r["speedup"]) for r in rows if r["series"] == series]
        for series in ("d=1", "d=8", "d=n")
    }
    text.append(
        ascii_chart(chart_series, x_label="processors", y_label="speed-up")
    )
    report("figure10", "\n".join(text))
    report_json(
        "figure10",
        {
            "bench": "figure10",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"variant": "gd + reassign-all", "disk_series": ["d=1", "d=8", "d=n"]},
            "rows": rows,
        },
    )

    d_n = {r["processors"]: r for r in rows if r["series"] == "d=n"}
    d_1 = {r["processors"]: r for r in rows if r["series"] == "d=1"}
    # Near-linear speed-up for d=n (paper: 22.6 at 24).
    assert d_n[24]["speedup"] > 12
    assert d_n[8]["speedup"] > 5
    # d=1 saturates well below that.
    assert d_1[24]["speedup"] < d_n[24]["speedup"] / 2
    # Growing total buffer: disk accesses at 24 below those at 2.
    assert d_n[24]["disk accesses"] < d_n[2]["disk accesses"]
    # Total run time of all tasks stays within ~1.5x of t(1)'s
    # (the paper reports only a modest increase).
    assert d_n[24]["total run time (s)"] < d_n[1]["total run time (s)"] * 1.5
