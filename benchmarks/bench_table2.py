"""Table 2: memory parameters of the simulated KSR1 (paper section 4.2).

Prints the configured hierarchy (cache / own main memory / remote memory)
with the derived 4 KB page-copy times; the benchmark measures the
simulated remote-vs-local access gap the paper quotes as "a factor of
about 10".
"""

import time

from repro.bench import heading, render_table, report, report_json, table2_rows
from repro.sim import Environment, KSR1_CONFIG, Machine


def _thousand_remote_copies():
    env = Environment()
    machine = Machine(env)

    def proc():
        for _ in range(1000):
            yield env.process(machine.remote_copy())

    env.process(proc())
    return env.run()


def bench_remote_copy_simulation(benchmark):
    simulated = benchmark.pedantic(_thousand_remote_copies, rounds=1, iterations=1)
    assert simulated > 0


def bench_table2_report(benchmark):
    started = time.perf_counter()
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    ratio = (
        KSR1_CONFIG.remote_memory.latency_us / KSR1_CONFIG.main_memory.latency_us
    )
    report(
        "table2",
        heading("Table 2 — KSR1 memory parameters (configured model)")
        + "\n"
        + render_table(
            rows,
            [
                "memory",
                "size of address space",
                "transfer unit (bytes)",
                "band width (MB/sec)",
                "latency (usec)",
                "4KB page copy (usec)",
            ],
        )
        + f"\n\nper-unit latency ratio (remote/local): {ratio:.1f} "
        + "(paper: 'a factor of about 10')",
    )
    report_json(
        "table2",
        {
            "bench": "table2",
            "scale": None,  # the KSR1 memory model is scale-independent
            "wall_time_s": wall,
            "config": {"remote_local_latency_ratio": ratio},
            "rows": rows,
        },
    )
    assert ratio > 5
