"""Extension bench: the shared-nothing join (paper section 5 future work).

Grid over data placement (spatial vs round-robin declustering) and task
assignment (static range / round-robin / dynamic-with-coordinator) at
n = 8 nodes, against the SVM ``gd`` reference.  The paper's open question
— "the assignment of the data to the different disks is of special
interest" — becomes measurable: spatial placement with the range
assignment keeps accesses local (fewest remote fetches), spatially blind
placement turns most accesses into network traffic.
"""

import time

from repro.bench import (
    active_scale,
    get_workload,
    heading,
    render_table,
    report,
    report_json,
    scaled_pages,
)
from repro.join import GD, ParallelJoinConfig, ReassignLevel, ReassignmentPolicy, parallel_spatial_join
from repro.join.assignment import AssignmentMode
from repro.join.shared_nothing import Placement, SharedNothingConfig, shared_nothing_join


def run_grid(workload):
    n = 8
    pages_per_node = scaled_pages(100, workload.scale)
    rows = []
    for placement in (Placement.SPATIAL, Placement.ROUND_ROBIN):
        for assignment, label in (
            (AssignmentMode.STATIC_RANGE, "range"),
            (AssignmentMode.STATIC_ROUND_ROBIN, "round-robin"),
            (AssignmentMode.DYNAMIC, "dynamic"),
        ):
            result = shared_nothing_join(
                workload.tree1,
                workload.tree2,
                SharedNothingConfig(
                    processors=n,
                    buffer_pages_per_processor=pages_per_node,
                    placement=placement,
                    assignment=assignment,
                ),
                page_store=workload.page_store,
            )
            rows.append(
                {
                    "architecture": f"SN {placement.value}",
                    "assignment": label,
                    "response (s)": result.response_time,
                    "disk accesses": result.disk_accesses,
                    "remote fetches": result.metrics["remote_fetches"],
                }
            )
    svm = parallel_spatial_join(
        workload.tree1,
        workload.tree2,
        ParallelJoinConfig(
            processors=n,
            disks=n,
            total_buffer_pages=pages_per_node * n,
            variant=GD,
            reassignment=ReassignmentPolicy(level=ReassignLevel.ALL),
        ),
        page_store=workload.page_store,
    )
    rows.append(
        {
            "architecture": "SVM (reference)",
            "assignment": "gd + reassign-all",
            "response (s)": svm.response_time,
            "disk accesses": svm.disk_accesses,
            "remote fetches": svm.metrics["remote_hits"],
        }
    )
    return rows


def bench_shared_nothing(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(run_grid, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "shared_nothing",
        heading(f"Shared-nothing join (scale={active_scale()}, n=8)")
        + "\n"
        + render_table(
            rows,
            ["architecture", "assignment", "response (s)", "disk accesses",
             "remote fetches"],
        ),
    )
    report_json(
        "shared_nothing",
        {
            "bench": "shared_nothing",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"nodes": 8, "buffer_paper_pages_per_node": 100},
            "rows": rows,
        },
    )
    by_key = {(r["architecture"], r["assignment"]): r for r in rows}
    spatial_range = by_key[("SN spatial", "range")]
    blind_range = by_key[("SN round-robin", "range")]
    # Spatial declustering + spatially contiguous workloads = locality.
    assert spatial_range["remote fetches"] < blind_range["remote fetches"]
