"""Figure 9: response time vs number of processors (paper section 4.5).

Best variant (gd + reassignment on all levels), buffer of 100 pages per
processor (scaled), three disk series: d = 1, d = 8, d = n.

Expected shape: with one disk the response time flattens out around four
processors (the disk is the bottleneck); with d = 8 the curve drops until
about 8-10 processors; with d = n it keeps dropping to n = 24.
"""

import time

from repro.bench import (
    active_scale,
    figure9_and_10,
    heading,
    render_series,
    render_table,
    report,
    report_json,
)

_CACHE: dict[int, list] = {}


def fig9_rows(workload):
    rows = _CACHE.get(id(workload))
    if rows is None:
        rows = figure9_and_10(workload)
        _CACHE[id(workload)] = rows
    return rows


def bench_figure9(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(fig9_rows, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    text = [
        heading(f"Figure 9 — response time vs processors (scale={active_scale()})"),
        render_table(rows, ["series", "processors", "response (s)"]),
    ]
    for series in ("d=1", "d=8", "d=n"):
        points = [(r["processors"], round(r["response (s)"], 1)) for r in rows if r["series"] == series]
        text.append(render_series(series, points))
    report("figure9", "\n".join(text))
    report_json(
        "figure9",
        {
            "bench": "figure9",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"variant": "gd + reassign-all", "disk_series": ["d=1", "d=8", "d=n"]},
            "rows": rows,
        },
    )

    by_series = {
        s: {r["processors"]: r["response (s)"] for r in rows if r["series"] == s}
        for s in ("d=1", "d=8", "d=n")
    }
    # d=n keeps improving all the way to 24 processors.
    assert by_series["d=n"][24] < by_series["d=n"][8] < by_series["d=n"][1]
    # One disk saturates far below linear scaling.
    assert by_series["d=1"][1] / by_series["d=1"][24] < 8
    # With many processors, more disks are decisively faster.
    assert by_series["d=n"][24] * 2 < by_series["d=1"][24]
