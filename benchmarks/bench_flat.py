"""Head-to-head: the flat packed backend vs the pointer R*-tree.

Runs the three hot kernels — window query, k-NN and the join filter —
plus the fork-based multiprocessing join over both backends on the same
maps, asserting identical result sets while timing each side.  Writes
``BENCH_flat.json`` (untagged — this bench *is* the backend comparison)
with the per-operation wall times and speedups.
"""

import random
import time

from repro.bench import (
    active_scale,
    heading,
    render_table,
    report,
    report_json,
)
from repro.datagen import build_tree
from repro.geometry import Rect
from repro.join import multiprocessing_join, sequential_join
from repro.query.batch import multi_window_query
from repro.rtree import build_flat_tree
from repro.rtree.query import nearest_neighbors

#: Query workload sizes (per backend, identical seeds).
WINDOW_QUERIES = 300
KNN_QUERIES = 120
KNN_K = 10


def _best_of(fn, repeat=3):
    """Best-of-*repeat* wall time and the last result."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _windows(region, count, seed):
    rng = random.Random(seed)
    side = region.side
    out = []
    for _ in range(count):
        extent = rng.uniform(0.01, 0.08) * side
        x = rng.uniform(0, side - extent)
        y = rng.uniform(0, side - extent)
        out.append(Rect(x, y, x + extent, y + extent))
    return out


def _points(region, count, seed):
    rng = random.Random(seed)
    side = region.side
    return [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(count)]


def run_head_to_head(workload):
    if workload.backend == "flat":
        flat1, flat2 = workload.tree1, workload.tree2
        node1, node2 = flat1.as_node_tree(), flat2.as_node_tree()
    else:
        node1, node2 = workload.tree1, workload.tree2
        flat1 = build_flat_tree(workload.map1)
        flat2 = build_flat_tree(workload.map2)

    region = workload.map1.region
    windows = _windows(region, WINDOW_QUERIES, seed=101)
    points = _points(region, KNN_QUERIES, seed=102)
    rows = []

    def row(op, node_s, flat_s):
        rows.append(
            {
                "operation": op,
                "node (s)": node_s,
                "flat (s)": flat_s,
                "speedup": node_s / flat_s if flat_s else float("inf"),
            }
        )
        return rows[-1]

    # Build: STR bulk load vs Z-order pack over the same items.
    t_node, _ = _best_of(lambda: build_tree(workload.map1), repeat=1)
    t_flat, _ = _best_of(lambda: build_flat_tree(workload.map1), repeat=1)
    row("build map1", t_node, t_flat)

    # Window queries: the batch entry point, answered each backend's
    # natural way — shared node traversal vs one broadcast frontier for
    # the whole batch.
    def win(tree):
        return [
            sorted(e.oid for e in hits)
            for hits in multi_window_query(tree, windows)
        ]

    t_node, node_hits = _best_of(lambda: win(node1))
    t_flat, flat_hits = _best_of(lambda: win(flat1))
    assert node_hits == flat_hits, "window result sets differ across backends"
    window_row = row(f"{WINDOW_QUERIES} window queries", t_node, t_flat)

    # k-NN: vectorized mindist vs per-entry Python distances.
    def knn(tree):
        return [
            [(d, e.oid) for d, e in nearest_neighbors(tree, x, y, KNN_K)]
            for x, y in points
        ]

    t_node, node_nn = _best_of(lambda: knn(node1))
    t_flat, flat_nn = _best_of(lambda: knn(flat1))
    assert node_nn == flat_nn, "k-NN answers differ across backends"
    row(f"{KNN_QUERIES} x {KNN_K}-NN queries", t_node, t_flat)

    # Join filter: the vectorized frontier vs the BKS93 plane sweep
    # (best-of-2: the first flat run pays numpy's cold allocations).
    t_node, node_pairs = _best_of(
        lambda: sequential_join(node1, node2).pairs, repeat=2
    )
    t_flat, flat_pairs = _best_of(
        lambda: sequential_join(flat1, flat2).pairs, repeat=2
    )
    assert set(node_pairs) == set(flat_pairs), "join pair sets differ"
    join_row = row("join filter (sequential)", t_node, t_flat)

    # Fork path: inherited pointer trees vs inherited packed arrays.
    t_node, node_mp = _best_of(
        lambda: multiprocessing_join(node1, node2, 4), repeat=1
    )
    t_flat, flat_mp = _best_of(
        lambda: multiprocessing_join(flat1, flat2, 4), repeat=1
    )
    assert set(node_mp) == set(flat_mp) == set(node_pairs)
    row("join filter (mp, 4 procs)", t_node, t_flat)

    return rows, window_row, join_row, len(node_pairs)


def bench_flat_backend(benchmark, workload):
    started = time.perf_counter()
    rows, window_row, join_row, pair_count = benchmark.pedantic(
        run_head_to_head, args=(workload,), rounds=1, iterations=1
    )
    wall = time.perf_counter() - started
    report(
        "flat",
        heading(
            f"Flat packed backend vs node R*-tree (scale={active_scale()})"
        )
        + "\n"
        + render_table(rows, ["operation", "node (s)", "flat (s)", "speedup"]),
        tagged=False,
    )
    report_json(
        "flat",
        {
            "bench": "flat",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {
                "window_queries": WINDOW_QUERIES,
                "knn_queries": KNN_QUERIES,
                "knn_k": KNN_K,
                "join_pairs": pair_count,
            },
            "rows": rows,
        },
        tagged=False,
    )
    # The roadmap's acceptance bar: the packed backend must beat the
    # pointer tree on the window-query and join-filter kernels.
    assert window_row["speedup"] > 1, f"window query: {window_row}"
    assert join_row["speedup"] > 1, f"join filter: {join_row}"
