"""Figure 5: disk accesses vs total LRU-buffer size (paper section 4.3).

Sweep: buffer 200-3,200 paper-pages (scaled), variants lsr / gsrr / gd,
n = 8 and n = 24 processors with d = n disks, task reassignment on the
root level.  Expected shape (the paper's findings):

* more buffer → fewer disk accesses, for every variant;
* lsr and gsrr close together, gd lowest;
* the global buffer profits more from larger buffers than local ones;
* 24 processors need more disk accesses than 8 (smaller per-processor
  buffers).
"""

import time

from repro.bench import active_scale, figure5, heading, render_table, report, report_json


def bench_figure5(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(figure5, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "figure5",
        heading(f"Figure 5 — disk accesses vs buffer size (scale={active_scale()})")
        + "\n"
        + render_table(rows, ["processors", "buffer (paper pages)", "lsr", "gsrr", "gd"]),
    )
    report_json(
        "figure5",
        {
            "bench": "figure5",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"processors": [8, 24], "variants": ["lsr", "gsrr", "gd"]},
            "rows": rows,
        },
    )

    by_n = {8: [], 24: []}
    for row in rows:
        by_n[row["processors"]].append(row)
    for n, series in by_n.items():
        # Monotone-ish: the largest buffer needs fewer accesses than the
        # smallest, for every variant.
        for variant in ("lsr", "gsrr", "gd"):
            assert series[-1][variant] < series[0][variant]
        # gd at most lsr on the biggest buffer.
        assert series[-1]["gd"] <= series[-1]["lsr"]
    # More processors split the same local buffer into smaller pieces:
    # lsr cannot get cheaper at 24 than at 8 (smallest buffer point).
    assert by_n[24][0]["lsr"] >= by_n[8][0]["lsr"] * 0.95
