"""Extension bench: the second filter step of [BKS 94] (paper section 2.1).

The paper omits the second filter because it does not change the parallel
design; we quantify what it would add: the convex-hull filter between the
MBR filter and the exact test removes a share of the false hits, so fewer
exact-geometry tests (10 ms each in the paper's cost model) remain.

This bench generates its own (smaller) workload because it needs exact
geometry attached to every object.
"""

import time

from repro.bench import heading, render_table, report, report_json
from repro.datagen import build_tree, paper_maps
from repro.join import RefinementModel, multi_step_join

SCALE = 0.05


def run_pipeline():
    map1, map2 = paper_maps(scale=SCALE, include_geometry=True)
    tree_r, tree_s = build_tree(map1), build_tree(map2)
    geo1 = {o.oid: o.points for o in map1.objects}
    geo2 = {o.oid: o.points for o in map2.objects}
    two_step = multi_step_join(tree_r, tree_s, geo1, geo2, use_second_filter=False)
    three_step = multi_step_join(tree_r, tree_s, geo1, geo2)
    model = RefinementModel()
    # The exact test costs ~10 ms in the paper's model; the hull test is a
    # cheap CPU check, conservatively 1 ms.
    hull_cost = 1e-3
    rows = [
        {
            "pipeline": "MBR filter -> exact",
            "MBR candidates": two_step.mbr_candidates,
            "hull survivors": two_step.hull_survivors,
            "exact tests": two_step.exact_tests,
            "answers": len(two_step.answers),
            "est. refinement cost (s)": two_step.exact_tests * 10e-3,
        },
        {
            "pipeline": "MBR -> hull -> exact",
            "MBR candidates": three_step.mbr_candidates,
            "hull survivors": three_step.hull_survivors,
            "exact tests": three_step.exact_tests,
            "answers": len(three_step.answers),
            "est. refinement cost (s)": three_step.mbr_candidates * hull_cost
            + three_step.exact_tests * 10e-3,
        },
    ]
    return rows, two_step, three_step


def bench_multistep(benchmark):
    started = time.perf_counter()
    rows, two_step, three_step = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )
    wall = time.perf_counter() - started
    report(
        "multistep",
        heading(f"Second filter step [BKS 94] (scale={SCALE})")
        + "\n"
        + render_table(
            rows,
            ["pipeline", "MBR candidates", "hull survivors", "exact tests",
             "answers", "est. refinement cost (s)"],
        ),
    )
    report_json(
        "multistep",
        {
            "bench": "multistep",
            "scale": SCALE,
            "wall_time_s": wall,
            "config": {"exact_test_cost_s": 10e-3, "hull_test_cost_s": 1e-3},
            "rows": rows,
        },
    )
    assert set(three_step.answers) == set(two_step.answers)
    assert three_step.exact_tests < two_step.exact_tests
