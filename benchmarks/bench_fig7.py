"""Figure 7: effect of task reassignment (paper section 4.4).

For each variant (lsr / gsrr / gd) and reassignment setting (without /
root level / all levels) at n = d = 8 and an 800-page buffer: run time of
the first-/average-/last-finishing processor and the disk accesses.

Expected shape: reassignment shrinks the spread between first and last
finisher drastically for lsr and gsrr; for gd, root-level reassignment
changes nothing (the dynamic queue already hands out root pairs one by
one) and all-levels helps a little; disk accesses barely move for gd.
"""

import time

from repro.bench import active_scale, figure7, heading, render_table, report, report_json


def bench_figure7(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(figure7, args=(workload,), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    report(
        "figure7",
        heading(f"Figure 7 — task reassignment (scale={active_scale()})")
        + "\n"
        + render_table(
            rows,
            [
                "variant",
                "reassignment",
                "first (s)",
                "avg (s)",
                "last (s)",
                "disk accesses",
                "reassignments",
            ],
        ),
    )
    report_json(
        "figure7",
        {
            "bench": "figure7",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"processors": 8, "disks": 8, "buffer_paper_pages": 800},
            "rows": rows,
        },
    )
    by_key = {(r["variant"], r["reassignment"]): r for r in rows}
    for variant in ("lsr", "gsrr"):
        without = by_key[(variant, "without")]
        balanced = by_key[(variant, "all levels")]
        spread_without = without["last (s)"] - without["first (s)"]
        spread_balanced = balanced["last (s)"] - balanced["first (s)"]
        assert spread_balanced < spread_without
        assert balanced["last (s)"] <= without["last (s)"]
    # gd: root-level reassignment is a no-op.
    assert (
        by_key[("gd", "without")]["last (s)"]
        == by_key[("gd", "root level")]["last (s)"]
    )
