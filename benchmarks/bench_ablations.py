"""Ablations of the design choices DESIGN.md calls out.

1. **Plane-sweep task order** (sections 2.2/3.1): shuffling the task list
   destroys spatial locality and should cost disk accesses, most visibly
   for local buffers.
2. **BKS93 tuning techniques** (section 2.2): search-space restriction and
   the node-level plane sweep vs the naive nested loop, measured in
   intersection tests of the sequential filter step.
"""

import time

from repro.bench import (
    ablation_task_order,
    ablation_tuning_techniques,
    active_scale,
    heading,
    render_table,
    report,
    report_json,
)


def bench_ablation_task_order(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(
        ablation_task_order, args=(workload,), rounds=1, iterations=1
    )
    wall = time.perf_counter() - started
    report(
        "ablation_task_order",
        heading(f"Ablation — task order (scale={active_scale()})")
        + "\n"
        + render_table(rows, ["variant", "task order", "disk accesses", "response (s)"]),
    )
    report_json(
        "ablation_task_order",
        {
            "bench": "ablation_task_order",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"orders": ["plane-sweep order", "shuffled"]},
            "rows": rows,
        },
    )
    by_key = {(r["variant"], r["task order"]): r for r in rows}
    # Destroying the plane-sweep order must not *reduce* lsr disk accesses.
    assert (
        by_key[("lsr", "shuffled")]["disk accesses"]
        >= by_key[("lsr", "plane-sweep order")]["disk accesses"]
    )


def bench_ablation_tuning(benchmark, workload):
    started = time.perf_counter()
    rows = benchmark.pedantic(
        ablation_tuning_techniques, args=(workload,), rounds=1, iterations=1
    )
    wall = time.perf_counter() - started
    report(
        "ablation_tuning",
        heading(f"Ablation — BKS93 tuning techniques (scale={active_scale()})")
        + "\n"
        + render_table(
            rows, ["restriction", "plane sweep", "intersection tests", "candidates"]
        ),
    )
    report_json(
        "ablation_tuning",
        {
            "bench": "ablation_tuning",
            "scale": active_scale(),
            "wall_time_s": wall,
            "config": {"techniques": ["restriction", "plane sweep"]},
            "rows": rows,
        },
    )
    tests = {
        (r["restriction"], r["plane sweep"]): r["intersection tests"] for r in rows
    }
    candidates = {r["candidates"] for r in rows}
    assert len(candidates) == 1  # all variants agree on the result
    assert tests[("on", "on")] < tests[("off", "off")]
