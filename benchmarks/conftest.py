"""Shared fixtures of the benchmark suite.

The workload (maps + trees) is built once per session and shared by all
benches; ``REPRO_SCALE`` (default 0.25) selects the fraction of the
paper's 131k/127k objects, and ``--backend {node,flat}`` (or
``REPRO_BACKEND``) selects the index backend, so every bench runs
head-to-head across backends.  With ``--backend flat`` all reports gain
a ``_flat`` suffix (``BENCH_<name>_flat.json``) so the two arms never
clobber each other.
"""

import pytest

from repro.bench import (
    BACKENDS,
    active_backend,
    active_scale,
    get_workload,
    set_report_suffix,
)


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="index backend for the workload trees (default: "
        "REPRO_BACKEND env var or 'node')",
    )


@pytest.fixture(scope="session", autouse=True)
def backend(request):
    chosen = request.config.getoption("--backend") or active_backend()
    set_report_suffix("" if chosen == "node" else f"_{chosen}")
    return chosen


@pytest.fixture(scope="session")
def workload(backend):
    return get_workload(active_scale(), backend=backend)
