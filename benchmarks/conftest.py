"""Shared fixtures of the benchmark suite.

The workload (maps + trees) is built once per session and shared by all
benches; ``REPRO_SCALE`` (default 0.25) selects the fraction of the
paper's 131k/127k objects.
"""

import pytest

from repro.bench import active_scale, get_workload


@pytest.fixture(scope="session")
def workload():
    return get_workload(active_scale())
